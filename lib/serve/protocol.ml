(* Request/response codecs for the unitd wire protocol.  See
   protocol.mli. *)

module Json = Unit_obs.Json
module Workload = Unit_graph.Workload
module Warmup = Unit_store.Warmup
module Pipeline = Unit_core.Pipeline

type workload =
  | Conv of Workload.conv2d
  | Dense of Workload.dense
  | Table1 of int

type request =
  | Ping
  | Stats
  | Shutdown
  | Load_isa of { path : string }
  | Trace of { id : string }
  | Metrics
  | Flight of { last : int option; errors_only : bool; slower_than_us : float option }
  | Tune of { target : Warmup.target; engine : Pipeline.engine; workload : workload }
  | Run of { target : Warmup.target; engine : Pipeline.engine; workload : workload }
  | Explain of { target : Warmup.target; workload : workload }

type error_code =
  | Bad_request
  | Overloaded
  | Draining
  | Not_applicable
  | Internal

type response =
  | Result of Json.t
  | Failure of error_code * string

let code_to_string = function
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Not_applicable -> "not_applicable"
  | Internal -> "internal"

let code_of_string = function
  | "bad_request" -> Some Bad_request
  | "overloaded" -> Some Overloaded
  | "draining" -> Some Draining
  | "not_applicable" -> Some Not_applicable
  | "internal" -> Some Internal
  | _ -> None

let workload_name = function
  | Conv wl -> Workload.name (Workload.Conv wl)
  | Dense wl -> Workload.name (Workload.Fc wl)
  | Table1 i -> Printf.sprintf "table1:%d" i

(* The request kind, as recorded in flight-recorder entries for control
   traffic (which has no coalesce key). *)
let kind_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Load_isa _ -> "load_isa"
  | Trace _ -> "trace"
  | Metrics -> "metrics"
  | Flight _ -> "flight"
  | Tune _ -> "tune"
  | Run _ -> "run"
  | Explain _ -> "explain"

(* Coalescing identity: everything that changes the answer.  Ping/Stats/
   Shutdown/Load_isa/Trace/Metrics/Flight are control traffic and never
   queued, so they have no key. *)
let coalesce_key = function
  | Ping | Stats | Shutdown | Load_isa _ | Trace _ | Metrics | Flight _ -> None
  | Tune { target; engine; workload } ->
    Some
      (Printf.sprintf "tune/%s/%s/%s" (Warmup.target_to_string target)
         (Pipeline.engine_to_string engine) (workload_name workload))
  | Run { target; engine; workload } ->
    Some
      (Printf.sprintf "run/%s/%s/%s" (Warmup.target_to_string target)
         (Pipeline.engine_to_string engine) (workload_name workload))
  | Explain { target; workload } ->
    Some
      (Printf.sprintf "explain/%s/%s" (Warmup.target_to_string target)
         (workload_name workload))

(* ---------- decoding ---------- *)

let ( let* ) = Result.bind

let int_field ?default name j =
  match Json.member name j with
  | None ->
    (match default with
     | Some d -> Ok d
     | None -> Error (Printf.sprintf "workload field %S missing" name))
  | Some v ->
    (match Json.to_int v with
     | Some i -> Ok i
     | None -> Error (Printf.sprintf "workload field %S is not an integer" name))

let workload_of_json j =
  match Json.member "table1" j with
  | Some v ->
    (match Json.to_int v with
     | Some i when i >= 1 && i <= Array.length Unit_models.Table1.workloads ->
       Ok (Table1 i)
     | Some i ->
       Error
         (Printf.sprintf "table1 index %d out of range 1..%d" i
            (Array.length Unit_models.Table1.workloads))
     | None -> Error "workload field \"table1\" is not an integer")
  | None ->
    let op =
      match Option.bind (Json.member "op" j) Json.to_str with
      | Some op -> op
      | None -> "conv2d"
    in
    (match op with
     | "conv2d" ->
       let* c = int_field "c" j in
       let* h = int_field "h" j in
       let* w = int_field ~default:h "w" j in
       let* k = int_field "k" j in
       let* kernel = int_field ~default:3 "kernel" j in
       let* stride = int_field ~default:1 "stride" j in
       let* padding = int_field ~default:(kernel / 2) "padding" j in
       let* groups = int_field ~default:1 "groups" j in
       let* () =
         if c > 0 && h > 0 && w > 0 && k > 0 && kernel > 0 && stride > 0
            && padding >= 0 && groups > 0
         then Ok ()
         else Error "conv2d workload dimensions must be positive"
       in
       Ok (Conv { Workload.c; h; w; k; kernel; stride; padding; groups })
     | "dense" ->
       let* d_k = int_field "k" j in
       let* d_units = int_field "units" j in
       let* () =
         if d_k > 0 && d_units > 0 then Ok ()
         else Error "dense workload dimensions must be positive"
       in
       Ok (Dense { Workload.d_k; d_units })
     | other -> Error (Printf.sprintf "unknown workload op %S (conv2d|dense)" other))

let target_of_json j =
  match Option.bind (Json.member "target" j) Json.to_str with
  | None -> Ok Warmup.X86
  | Some s -> Warmup.target_of_string s

let engine_of_json j =
  match Option.bind (Json.member "engine" j) Json.to_str with
  | None -> Ok Pipeline.Compiled
  | Some s ->
    (match Pipeline.engine_of_string s with
     | Ok e -> Ok e
     | Error d -> Error (Unit_tir.Diag.to_string d))

(* Client-supplied trace id: optional, and validated tightly since it is
   echoed into responses, span tags and flight-recorder entries. *)
let trace_id_of_json j =
  match Json.member "trace_id" j with
  | None -> Ok None
  | Some (Json.Str id) ->
    if id = "" then Error "field \"trace_id\" must not be empty"
    else if String.length id > 128 then
      Error "field \"trace_id\" too long (max 128 bytes)"
    else if
      not
        (String.for_all
           (fun c ->
             match c with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | ':' ->
               true
             | _ -> false)
           id)
    then Error "field \"trace_id\" has characters outside [a-zA-Z0-9._:-]"
    else Ok (Some id)
  | Some _ -> Error "field \"trace_id\" is not a string"

let request_of_json j =
  match Option.bind (Json.member "req" j) Json.to_str with
  | None -> Error "field \"req\" missing or not a string"
  | Some "ping" -> Ok Ping
  | Some "stats" -> Ok Stats
  | Some "shutdown" -> Ok Shutdown
  | Some "metrics" -> Ok Metrics
  | Some "trace" ->
    (match Option.bind (Json.member "id" j) Json.to_str with
     | Some id -> Ok (Trace { id })
     | None -> Error "field \"id\" missing or not a string")
  | Some "flight" ->
    let opt_int name =
      match Json.member name j with
      | None -> Ok None
      | Some v ->
        (match Json.to_int v with
         | Some i when i >= 0 -> Ok (Some i)
         | _ -> Error (Printf.sprintf "field %S is not a non-negative integer" name))
    in
    let opt_num name =
      match Json.member name j with
      | None -> Ok None
      | Some v ->
        (match Json.to_num v with
         | Some x when x >= 0.0 -> Ok (Some x)
         | _ -> Error (Printf.sprintf "field %S is not a non-negative number" name))
    in
    let* last = opt_int "last" in
    let* slower_than_us = opt_num "slower_than_us" in
    let errors_only =
      match Json.member "errors_only" j with
      | Some (Json.Bool b) -> b
      | _ -> false
    in
    Ok (Flight { last; errors_only; slower_than_us })
  | Some "load_isa" ->
    (match Option.bind (Json.member "path" j) Json.to_str with
     | Some path -> Ok (Load_isa { path })
     | None -> Error "field \"path\" missing or not a string")
  | Some (("tune" | "run" | "explain") as req) ->
    let* target = target_of_json j in
    let* workload =
      match Json.member "workload" j with
      | Some wj -> workload_of_json wj
      | None -> Error "field \"workload\" missing"
    in
    (match req with
     | "tune" ->
       let* engine = engine_of_json j in
       Ok (Tune { target; engine; workload })
     | "run" ->
       let* engine = engine_of_json j in
       Ok (Run { target; engine; workload })
     | _ -> Ok (Explain { target; workload }))
  | Some other ->
    Error
      (Printf.sprintf
         "unknown request %S \
          (ping|stats|shutdown|load_isa|trace|metrics|flight|tune|run|explain)"
         other)

let parse_request payload =
  match Json.parse payload with
  | Error m -> Error ("malformed JSON: " ^ m)
  | Ok j -> request_of_json j

(* ---------- encoding ---------- *)

let workload_to_json = function
  | Table1 i -> Json.Obj [ ("table1", Json.Num (float_of_int i)) ]
  | Conv { Workload.c; h; w; k; kernel; stride; padding; groups } ->
    let num i = Json.Num (float_of_int i) in
    Json.Obj
      [ ("op", Json.Str "conv2d"); ("c", num c); ("h", num h); ("w", num w);
        ("k", num k); ("kernel", num kernel); ("stride", num stride);
        ("padding", num padding); ("groups", num groups)
      ]
  | Dense { Workload.d_k; d_units } ->
    Json.Obj
      [ ("op", Json.Str "dense");
        ("k", Json.Num (float_of_int d_k));
        ("units", Json.Num (float_of_int d_units))
      ]

let request_to_json req =
  let common ~req ~target workload rest =
    Json.Obj
      ([ ("req", Json.Str req);
         ("target", Json.Str (Warmup.target_to_string target));
         ("workload", workload_to_json workload)
       ]
      @ rest)
  in
  match req with
  | Ping -> Json.Obj [ ("req", Json.Str "ping") ]
  | Stats -> Json.Obj [ ("req", Json.Str "stats") ]
  | Shutdown -> Json.Obj [ ("req", Json.Str "shutdown") ]
  | Load_isa { path } ->
    Json.Obj [ ("req", Json.Str "load_isa"); ("path", Json.Str path) ]
  | Metrics -> Json.Obj [ ("req", Json.Str "metrics") ]
  | Trace { id } -> Json.Obj [ ("req", Json.Str "trace"); ("id", Json.Str id) ]
  | Flight { last; errors_only; slower_than_us } ->
    Json.Obj
      ([ ("req", Json.Str "flight") ]
      @ (match last with
         | None -> []
         | Some n -> [ ("last", Json.Num (float_of_int n)) ])
      @ (if errors_only then [ ("errors_only", Json.Bool true) ] else [])
      @
      match slower_than_us with
      | None -> []
      | Some x -> [ ("slower_than_us", Json.Num x) ])
  | Tune { target; engine; workload } ->
    common ~req:"tune" ~target workload
      [ ("engine", Json.Str (Pipeline.engine_to_string engine)) ]
  | Run { target; engine; workload } ->
    common ~req:"run" ~target workload
      [ ("engine", Json.Str (Pipeline.engine_to_string engine)) ]
  | Explain { target; workload } -> common ~req:"explain" ~target workload []

let response_to_json ?trace_id resp =
  let tid =
    match trace_id with
    | None -> []
    | Some id -> [ ("trace_id", Json.Str id) ]
  in
  match resp with
  | Result r -> Json.Obj ([ ("status", Json.Str "ok"); ("result", r) ] @ tid)
  | Failure (code, message) ->
    Json.Obj
      ([ ("status", Json.Str "error");
         ("code", Json.Str (code_to_string code));
         ("message", Json.Str message)
       ]
      @ tid)

let response_of_json j =
  match Option.bind (Json.member "status" j) Json.to_str with
  | Some "ok" ->
    (match Json.member "result" j with
     | Some r -> Ok (Result r)
     | None -> Error "ok response without a \"result\"")
  | Some "error" ->
    let* code =
      match Option.bind (Json.member "code" j) Json.to_str with
      | Some s ->
        (match code_of_string s with
         | Some c -> Ok c
         | None -> Error (Printf.sprintf "unknown error code %S" s))
      | None -> Error "error response without a \"code\""
    in
    let message =
      Option.value ~default:""
        (Option.bind (Json.member "message" j) Json.to_str)
    in
    Ok (Failure (code, message))
  | Some other -> Error (Printf.sprintf "unknown status %S" other)
  | None -> Error "field \"status\" missing"

(* ---------- result digests ---------- *)

(* Canonical content digest of an execution result; the element-exact
   hash lives with the array type itself. *)
let digest_ndarray nd = Unit_codegen.Ndarray.digest nd
