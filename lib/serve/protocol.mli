(** The unitd request/response protocol, carried as one JSON document
    per {!Wire} frame.

    Requests:
    {v
    {"req":"ping"} | {"req":"stats"} | {"req":"shutdown"}
    {"req":"metrics"}                      Prometheus text scrape
    {"req":"trace","id":"..."}             finished trace as Chrome JSON
    {"req":"flight","last":50,"errors_only":true,"slower_than_us":1e4}
    {"req":"tune","target":"x86","engine":"compiled",
     "workload":{"op":"conv2d","c":64,"h":14,"k":128,"kernel":3}}
    {"req":"run", ...same fields...}
    {"req":"explain","target":"x86","workload":{"table1":5}}
    v}
    [target] defaults to x86, [engine] to compiled, and a workload is
    either an explicit conv2d/dense shape or a Table I row index.
    [flight]'s three filter fields are all optional.

    Any request may additionally carry a ["trace_id"] field (1–128
    bytes of [[a-zA-Z0-9._:-]]) naming the trace the request's work is
    tagged under; the server generates one when absent and echoes it as
    a ["trace_id"] field in every response either way.  Unknown fields
    are ignored everywhere.

    Responses: [{"status":"ok","result":...}] or
    [{"status":"error","code":"...","message":"..."}] where [code] is
    one of [bad_request], [overloaded], [draining], [not_applicable],
    [internal].  Malformed input of any kind maps to a [bad_request]
    response — never a dropped connection without an answer, never a
    crash (the wire fuzz tests pin this). *)

type workload =
  | Conv of Unit_graph.Workload.conv2d
  | Dense of Unit_graph.Workload.dense
  | Table1 of int  (** 1-based Table I row *)

type request =
  | Ping
  | Stats
  | Shutdown
  | Load_isa of { path : string }
      (** load a declarative [.uisa] instruction pack (server-side path)
          into the daemon's registry; answered inline like the other
          control requests.  Idempotent for identical semantics,
          [Bad_request] on a digest conflict or an invalid pack. *)
  | Trace of { id : string }
      (** fetch a finished trace by id as a Chrome-trace JSON document;
          [Bad_request] when the id is unknown (never begun, or evicted
          from the bounded trace store). *)
  | Metrics
      (** one Prometheus text-exposition scrape of the live counters,
          gauges and histograms; the result is
          [{"content_type":...,"body":...}]. *)
  | Flight of {
      last : int option;
      errors_only : bool;
      slower_than_us : float option;
    }
      (** the flight-recorder window (oldest first) after the filters,
          with exact nearest-rank p50/p99 over the {e whole} unfiltered
          window. *)
  | Tune of {
      target : Unit_store.Warmup.target;
      engine : Unit_core.Pipeline.engine;
      workload : workload;
    }
  | Run of {
      target : Unit_store.Warmup.target;
      engine : Unit_core.Pipeline.engine;
      workload : workload;
    }
  | Explain of { target : Unit_store.Warmup.target; workload : workload }

type error_code =
  | Bad_request  (** unparseable or invalid request *)
  | Overloaded  (** admission control: queue full, try again later *)
  | Draining  (** daemon is shutting down, not accepting work *)
  | Not_applicable  (** deterministic rejection: workload does not tensorize *)
  | Internal  (** handler failed after retries *)

type response =
  | Result of Unit_obs.Json.t
  | Failure of error_code * string

val code_to_string : error_code -> string
val code_of_string : string -> error_code option

val workload_name : workload -> string

val kind_name : request -> string
(** The request's wire name ([ping], [tune], …) — what flight-recorder
    entries use as the key for control traffic. *)

val coalesce_key : request -> string option
(** The request's coalescing identity — kind, target, engine and
    workload — or [None] for control requests
    (ping/stats/shutdown/load_isa/trace/metrics/flight), which are
    answered inline and never queued. *)

val workload_of_json : Unit_obs.Json.t -> (workload, string) result
val workload_to_json : workload -> Unit_obs.Json.t

val request_of_json : Unit_obs.Json.t -> (request, string) result
val request_to_json : request -> Unit_obs.Json.t

val trace_id_of_json : Unit_obs.Json.t -> (string option, string) result
(** The optional ["trace_id"] field of a request document: [Ok None]
    when absent, [Ok (Some id)] when present and well-formed (1–128
    bytes of [[a-zA-Z0-9._:-]]), [Error] otherwise. *)

val parse_request : string -> (request, string) result
(** [request_of_json] over a raw frame payload; a JSON parse failure is
    an [Error] like any other malformed request. *)

val response_to_json : ?trace_id:string -> response -> Unit_obs.Json.t
(** [trace_id], when given, is appended as a ["trace_id"] field to both
    ok and error documents — the echo every daemon response carries. *)

val response_of_json : Unit_obs.Json.t -> (response, string) result

val digest_ndarray : Unit_codegen.Ndarray.t -> string
(** Canonical content digest of an execution result, element-exact
    (integers printed exactly, floats by their IEEE bits).  The soak
    harness compares this between daemon responses and direct
    [Pipeline] runs — equal digests mean bit-identical outputs. *)
