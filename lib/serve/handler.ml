(* The daemon's request handler: protocol requests in, pipeline calls
   out.  See handler.mli. *)

module Json = Unit_obs.Json
module Obs = Unit_obs.Obs
module Pipeline = Unit_core.Pipeline
module Workload = Unit_graph.Workload
module Warmup = Unit_store.Warmup
module Cpu_tuner = Unit_rewriter.Cpu_tuner
module Ndarray = Unit_codegen.Ndarray
module Spec = Unit_machine.Spec

let c_shared = Obs.counter "serve.tensorize.shared"
let shared_flights = Atomic.make 0

(* One process-wide flight table: the pipeline memo compiles outside its
   lock, so without this two worker domains missing on the same workload
   would both run the tuner sweep — the duplicate tune the soak test
   forbids.  The key deliberately omits the engine: engines share one
   tensorization. *)
let flight = Singleflight.create ()

let spec_of_target = function
  | Warmup.X86 -> Spec.cascadelake
  | Warmup.Arm -> Spec.graviton2

let conv_of_workload = function
  | Protocol.Conv wl -> wl
  | Protocol.Table1 i -> Unit_models.Table1.workloads.(i - 1)
  | Protocol.Dense _ -> invalid_arg "not a convolution workload"

let compiled_for ~target workload =
  let tag = Warmup.target_to_string target in
  let key = tag ^ "/" ^ Protocol.workload_name workload in
  let compile () =
    match (target, workload) with
    | Warmup.X86, (Protocol.Conv _ | Protocol.Table1 _) ->
      Pipeline.conv_compiled_x86 (conv_of_workload workload)
    | Warmup.Arm, (Protocol.Conv _ | Protocol.Table1 _) ->
      Pipeline.conv_compiled_arm (conv_of_workload workload)
    | Warmup.X86, Protocol.Dense wl -> Pipeline.dense_compiled_x86 wl
    | Warmup.Arm, Protocol.Dense wl -> Pipeline.dense_compiled_arm wl
  in
  let compiled, shared = Singleflight.with_key flight key compile in
  if shared then begin
    Atomic.incr shared_flights;
    Obs.incr c_shared
  end;
  compiled

let shared_tensorize_count () = Atomic.get shared_flights

let tune_result ~target ~engine workload (c : Pipeline.compiled) =
  let spec = spec_of_target target in
  let tuned = c.Pipeline.c_tuned in
  let est = tuned.Cpu_tuner.t_estimate in
  Json.Obj
    [ ("workload", Json.Str (Protocol.workload_name workload));
      ("target", Json.Str (Warmup.target_to_string target));
      ("engine", Json.Str (Pipeline.engine_to_string engine));
      ( "signature",
        Json.Str (Pipeline.workload_signature ~spec c.Pipeline.c_op c.Pipeline.c_intrin) );
      ("isa", Json.Str c.Pipeline.c_intrin.Unit_isa.Intrin.name);
      ("config", Cpu_tuner.config_to_json tuned.Cpu_tuner.t_config);
      ("cycles", Json.Num est.Unit_machine.Cpu_model.est_cycles);
      ("seconds", Json.Num est.Unit_machine.Cpu_model.est_seconds)
    ]

(* Execute the tensorized kernel on the canonical deterministic inputs
   (seed 1, like `unitc run`) and return the output's content digest —
   the bit-identity witness the soak harness compares against direct
   pipeline runs. *)
let run_result ~target ~engine workload (c : Pipeline.compiled) =
  let spec = spec_of_target target in
  let op = c.Pipeline.c_op in
  let signature = Pipeline.workload_signature ~spec op c.Pipeline.c_intrin in
  let inputs =
    List.map
      (fun t -> (t, Ndarray.random_for_tensor ~seed:1 t))
      (Unit_dsl.Op.inputs op)
  in
  let out = Ndarray.of_tensor_zeros op.Unit_dsl.Op.output in
  Pipeline.run_func ~engine
    ~signature:("tensorized|" ^ signature)
    c.Pipeline.c_tuned.Cpu_tuner.t_func
    ~bindings:((op.Unit_dsl.Op.output, out) :: inputs);
  Json.Obj
    [ ("workload", Json.Str (Protocol.workload_name workload));
      ("target", Json.Str (Warmup.target_to_string target));
      ("engine", Json.Str (Pipeline.engine_to_string engine));
      ("digest", Json.Str (Protocol.digest_ndarray out));
      ("elements", Json.Num (float_of_int (Ndarray.num_elements out)))
    ]

let explain_target = function
  | Warmup.X86 -> Unit_core.Explain.X86
  | Warmup.Arm -> Unit_core.Explain.Arm

let handle = function
  | Protocol.Ping -> Json.Obj [ ("pong", Json.Bool true) ]
  | Protocol.Stats ->
    (* normally answered inline by the server; kept total for direct use *)
    Obs.stats_json ()
  | Protocol.Shutdown -> Json.Obj [ ("draining", Json.Bool true) ]
  | Protocol.Metrics ->
    (* normally answered inline by the server; kept total for direct use *)
    Json.Obj
      [ ("content_type", Json.Str Unit_obs.Metrics.content_type);
        ("body", Json.Str (Unit_obs.Metrics.render ()))
      ]
  | Protocol.Trace { id } ->
    (match Obs.trace_chrome id with
     | Some doc -> doc
     | None ->
       invalid_arg
         (Printf.sprintf "unknown trace_id %S (never begun, or evicted)" id))
  | Protocol.Flight _ ->
    (* only the server can answer: the flight recorder is per-server
       state the handler has no handle on *)
    invalid_arg "flight is answered inline by the server"
  | Protocol.Load_isa { path } ->
    (* normally answered inline by the server; kept total for direct use *)
    (match Unit_isadsl.Loader.load_file path with
     | Ok info ->
       Json.Obj
         [ ("pack", Json.Str info.Unit_isadsl.Loader.pk_source);
           ( "loaded",
             Json.Num
               (float_of_int
                  (List.length info.Unit_isadsl.Loader.pk_instructions)) )
         ]
     | Error ds ->
       invalid_arg
         (String.concat "; " (List.map Unit_tir.Diag.to_string ds)))
  | Protocol.Tune { target; engine; workload } ->
    tune_result ~target ~engine workload (compiled_for ~target workload)
  | Protocol.Run { target; engine; workload } ->
    run_result ~target ~engine workload (compiled_for ~target workload)
  | Protocol.Explain { target; workload } ->
    (match workload with
     | Protocol.Dense _ ->
       invalid_arg "explain covers convolution workloads only"
     | Protocol.Conv _ | Protocol.Table1 _ ->
       Unit_core.Explain.to_json
         (Unit_core.Explain.conv (explain_target target)
            (conv_of_workload workload)))
