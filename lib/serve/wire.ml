(* Length-prefixed framing: 4-byte big-endian length + payload.
   See wire.mli. *)

let max_frame = 4 * 1024 * 1024

type error =
  | Closed
  | Truncated of string
  | Oversized of int

let error_to_string = function
  | Closed -> "connection closed"
  | Truncated what -> "truncated frame (" ^ what ^ ")"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes, max %d)" n max_frame

(* Read exactly [len] bytes, riding out EINTR and short reads; [Error n]
   reports how many bytes arrived before EOF.  Bounded work per call —
   this can block on a slow peer but never spins or over-reads. *)
let really_read fd buf off len =
  let rec go off remaining =
    if remaining = 0 then Ok ()
    else
      match Unix.read fd buf off remaining with
      | 0 -> Error (len - remaining)
      | n -> go (off + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off remaining
  in
  go off len

let really_write fd buf off len =
  let rec go off remaining =
    if remaining > 0 then
      match Unix.write fd buf off remaining with
      | n -> go (off + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off remaining
  in
  go off len

let encode payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let read_frame fd =
  let header = Bytes.create 4 in
  match really_read fd header 0 4 with
  | Error 0 -> Error Closed
  | Error n -> Error (Truncated (Printf.sprintf "%d of 4 header bytes" n))
  | Ok () ->
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len < 0 || len > max_frame then Error (Oversized len)
    else begin
      let payload = Bytes.create len in
      match really_read fd payload 0 len with
      | Error n ->
        Error (Truncated (Printf.sprintf "%d of %d payload bytes" n len))
      | Ok () -> Ok (Bytes.unsafe_to_string payload)
    end

let write_frame fd payload =
  let framed = encode payload in
  really_write fd (Bytes.unsafe_of_string framed) 0 (String.length framed)
