(** The daemon's flight recorder: a bounded ring of per-request
    completion records, kept regardless of whether span tracing is on.

    Every request that reaches {!Server.submit} leaves exactly one
    entry when its response is ready — leaders, coalesced followers,
    control traffic and structured failures alike — so the window is a
    complete, exact record of the daemon's recent past: percentiles
    over it are measured over every request in the window, not sampled.
    Below capacity nothing is ever lost; above it eviction is strict
    FIFO (the qcheck ring property pins both).  The critical section is
    one array store and an increment. *)

type entry = {
  fl_trace : string;  (** request trace id *)
  fl_key : string;  (** coalesce key, or the request kind for control traffic *)
  fl_outcome : string;  (** ["ok"] or the structured error code *)
  fl_coalesced : bool;  (** adopted another request's in-flight job *)
  fl_queue_us : float;  (** submit → job start (0 for inline answers) *)
  fl_run_us : float;  (** job start → response ready *)
  fl_engine : string;  (** requested engine, [""] for control traffic *)
  fl_store_hit : bool;  (** the request's trace saw a tuning-store disk hit *)
}

type t

val default_cap : int
(** 4096. *)

val create : ?cap:int -> unit -> t
(** @raise Invalid_argument when [cap < 1]. *)

val cap : t -> int

val record : t -> entry -> unit

val recorded : t -> int
(** Total entries ever recorded (≥ the window size). *)

val total_us : entry -> float
(** [fl_queue_us +. fl_run_us] — the request's total latency, the same
    quantity the [serve.latency_us] histogram observes. *)

val entries :
  ?last:int -> ?errors_only:bool -> ?slower_than_us:float -> t -> entry list
(** The live window, oldest first.  [errors_only] keeps non-["ok"]
    outcomes; [slower_than_us] keeps entries with [total_us] strictly
    above the bound; [last] keeps the newest N after the other filters.
    @raise Invalid_argument when [last < 0]. *)

val exact_percentile : entry list -> float -> float
(** Nearest-rank percentile of {!total_us} over the given entries —
    exact over the window, no reservoir.  [0.0] on an empty list. *)

val entry_to_json : entry -> Unit_obs.Json.t
val entry_of_json : Unit_obs.Json.t -> (entry, string) result

val pp_entry : Format.formatter -> entry -> unit

val dump : ?last:int -> out_channel -> t -> unit
(** Human-readable tail of the window (default last 32) — what the
    server prints to stderr when a worker dies or answers [internal]. *)
