(* The unitd server core: bounded admission queue, worker-domain pool,
   request coalescing, bounded retries, graceful drain.  See
   server.mli. *)

module Json = Unit_obs.Json
module Obs = Unit_obs.Obs
module Metrics = Unit_obs.Metrics
module Warmup = Unit_store.Warmup
module Pipeline = Unit_core.Pipeline

(* always-on: these feed /stats and the metrics exposition, which must
   stay truthful with span tracing disabled *)
let c_requests = Obs.counter ~always:true "serve.requests"
let c_completed = Obs.counter ~always:true "serve.completed"
let c_coalesced = Obs.counter ~always:true "serve.coalesced"
let c_overloaded = Obs.counter ~always:true "serve.overloaded"
let c_retry = Obs.counter ~always:true "serve.retry"
let c_failed = Obs.counter ~always:true "serve.failed"
let h_latency = Obs.histogram ~always:true "serve.latency_us"

type config = {
  domains : int;
  queue_cap : int;
  retries : int;
}

let default_config = { domains = 4; queue_cap = 64; retries = 1 }

(* One queued unit of work.  Waiters block on [jb_cond]; the worker that
   executes the job publishes under [jb_mutex] and broadcasts.  The
   leader (first submitter) and every coalesced waiter share the same
   response object. *)
type job = {
  jb_key : string;
  jb_trace : string;  (* the leader's trace id: spans/counters tag here *)
  jb_request : Protocol.request;
  jb_mutex : Mutex.t;
  jb_cond : Condition.t;
  mutable jb_start : float;  (* span-clock time the worker picked it up *)
  mutable jb_done : bool;
  mutable jb_response : Protocol.response;
}

type t = {
  cfg : config;
  handle : Protocol.request -> Json.t;
  fault : key:string -> attempt:int -> unit;
  sleep : float -> unit;
  lock : Mutex.t;  (** guards queue, inflight, draining, stopping *)
  have_work : Condition.t;
  queue : job Queue.t;
  inflight : (string, job) Hashtbl.t;
  flight : Flight.t;
  mutable draining : bool;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  (* stats live on atomics, not Obs counters, so /stats answers
     truthfully even when tracing is disabled *)
  n_requests : int Atomic.t;
  n_completed : int Atomic.t;
  n_coalesced : int Atomic.t;
  n_overloaded : int Atomic.t;
  n_retries : int Atomic.t;
  n_failed : int Atomic.t;
}

let execute t job =
  job.jb_start <- Obs.now ();
  let rec attempt n =
    match
      t.fault ~key:job.jb_key ~attempt:n;
      t.handle job.jb_request
    with
    | result -> Protocol.Result result
    | exception Invalid_argument reason ->
      (* deterministic pipeline rejection: retrying cannot change it *)
      Protocol.Failure (Protocol.Not_applicable, reason)
    | exception e when n <= t.cfg.retries ->
      ignore (e : exn);
      Atomic.incr t.n_retries;
      Obs.incr c_retry;
      t.sleep (Warmup.backoff_s ~key:job.jb_key ~attempt:n);
      attempt (n + 1)
    | exception e ->
      Atomic.incr t.n_failed;
      Obs.incr c_failed;
      Protocol.Failure
        ( Protocol.Internal,
          Printf.sprintf "%s (after %d attempt(s))" (Printexc.to_string e) n )
  in
  (* the handler runs under the leader's trace context, so pipeline
     spans, counter increments and diags land on the request's trace *)
  let response = Obs.with_trace_id (Some job.jb_trace) (fun () -> attempt 1) in
  (* unregister first: a submitter arriving after this point starts a
     fresh flight instead of adopting a published one *)
  Mutex.lock t.lock;
  Hashtbl.remove t.inflight job.jb_key;
  Mutex.unlock t.lock;
  Mutex.lock job.jb_mutex;
  job.jb_response <- response;
  job.jb_done <- true;
  Condition.broadcast job.jb_cond;
  Mutex.unlock job.jb_mutex;
  Atomic.incr t.n_completed;
  Obs.incr c_completed

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.have_work t.lock
    done;
    if Queue.is_empty t.queue then (* stopping && drained *)
      Mutex.unlock t.lock
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.lock;
      execute t job;
      loop ()
    end
  in
  loop ()

let create ?(fault = fun ~key:_ ~attempt:_ -> ()) ?(sleep = Unix.sleepf)
    ?(handle = Handler.handle) ?flight_cap cfg =
  if cfg.domains < 1 then invalid_arg "Server.create: domains must be >= 1";
  if cfg.queue_cap < 1 then invalid_arg "Server.create: queue_cap must be >= 1";
  if cfg.retries < 0 then invalid_arg "Server.create: retries must be >= 0";
  let t =
    { cfg; handle; fault; sleep;
      flight = Flight.create ?cap:flight_cap ();
      lock = Mutex.create ();
      have_work = Condition.create ();
      queue = Queue.create ();
      inflight = Hashtbl.create 64;
      draining = false;
      stopping = false;
      workers = [];
      n_requests = Atomic.make 0;
      n_completed = Atomic.make 0;
      n_coalesced = Atomic.make 0;
      n_overloaded = Atomic.make 0;
      n_retries = Atomic.make 0;
      n_failed = Atomic.make 0
    }
  in
  t.workers <- List.init cfg.domains (fun _ -> Domain.spawn (worker t));
  (* live queue depth for the metrics exposition; replaced by name, so
     the most recently created server owns the gauge *)
  Obs.register_gauge "serve.queue_depth" (fun () ->
      Mutex.lock t.lock;
      let q = Queue.length t.queue in
      Mutex.unlock t.lock;
      float_of_int q);
  t

let flight t = t.flight

let stats_fields t =
  Mutex.lock t.lock;
  let queued = Queue.length t.queue in
  let inflight = Hashtbl.length t.inflight in
  let draining = t.draining in
  Mutex.unlock t.lock;
  [ ("domains", t.cfg.domains); ("queue_cap", t.cfg.queue_cap);
    ("queued", queued); ("queue_depth", queued); ("inflight", inflight);
    ("draining", if draining then 1 else 0);
    ("requests", Atomic.get t.n_requests);
    ("completed", Atomic.get t.n_completed);
    ("coalesced", Atomic.get t.n_coalesced);
    ("overloaded", Atomic.get t.n_overloaded);
    ("retries", Atomic.get t.n_retries);
    ("failed", Atomic.get t.n_failed);
    ("tensorize_shared", Handler.shared_tensorize_count ())
  ]

let isa_packs_json () =
  Json.Arr
    (List.map
       (fun (info : Unit_isadsl.Loader.pack_info) ->
         Json.Obj
           [ ("source", Json.Str info.Unit_isadsl.Loader.pk_source);
             ( "instructions",
               Json.Arr
                 (List.map
                    (fun (name, digest, _) ->
                      Json.Obj
                        [ ("name", Json.Str name);
                          ("digest", Json.Str digest)
                        ])
                    info.Unit_isadsl.Loader.pk_instructions) )
           ])
       (Unit_isadsl.Loader.loaded ()))

let stats_json t =
  Json.Obj
    [ ( "server",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Num (float_of_int v)))
             (stats_fields t)) );
      ("isa_packs", isa_packs_json ());
      ("obs", Obs.stats_json ())
    ]

let await job =
  Mutex.lock job.jb_mutex;
  while not job.jb_done do
    Condition.wait job.jb_cond job.jb_mutex
  done;
  let response = job.jb_response in
  Mutex.unlock job.jb_mutex;
  response

let mark_coalesced ~leader = function
  | Protocol.Result (Json.Obj fields) ->
    Protocol.Result
      (Json.Obj
         (fields
         @ [ ("coalesced", Json.Bool true);
             ("leader_trace_id", Json.Str leader)
           ]))
  | other -> other

(* Server-generated trace ids: a per-process token (so two daemons'
   traces cannot collide in a shared log) and a sequence number. *)
let gen_trace_id =
  let seq = Atomic.make 0 in
  let token =
    lazy
      (Printf.sprintf "%06x"
         (Hashtbl.hash (Unix.getpid (), Unix.gettimeofday ()) land 0xffffff))
  in
  fun () ->
    Printf.sprintf "unitd-%s-%d" (Lazy.force token) (Atomic.fetch_and_add seq 1)

let flight_json t ~last ~errors_only ~slower_than_us =
  (* exact percentiles are over the whole live window; the filters only
     shape the entry listing *)
  let window = Flight.entries t.flight in
  let filtered = Flight.entries ?last ~errors_only ?slower_than_us t.flight in
  Json.Obj
    [ ("window", Json.Num (float_of_int (List.length window)));
      ("recorded", Json.Num (float_of_int (Flight.recorded t.flight)));
      ("cap", Json.Num (float_of_int (Flight.cap t.flight)));
      ("exact_p50_us", Json.Num (Flight.exact_percentile window 50.0));
      ("exact_p99_us", Json.Num (Flight.exact_percentile window 99.0));
      ("entries", Json.Arr (List.map Flight.entry_to_json filtered))
    ]

let submit_traced t ?trace_id request =
  let trace =
    match trace_id with Some id -> id | None -> gen_trace_id ()
  in
  Obs.trace_begin trace;
  Atomic.incr t.n_requests;
  Obs.incr c_requests;
  let t0 = Obs.now () in
  (* who executed the request: for a coalesced follower the spans and
     store counters live on the leader's trace, not the follower's *)
  let exec_trace = ref trace in
  let queued_job = ref None in
  let coalesced = ref false in
  let finish response =
    let total_us = Float.max 0.0 ((Obs.now () -. t0) *. 1e6) in
    Obs.observe h_latency total_us;
    let queue_us =
      match !queued_job with
      | None -> 0.0 (* answered inline: overload, draining, control *)
      | Some job -> Float.max 0.0 (Float.min total_us ((job.jb_start -. t0) *. 1e6))
    in
    let entry =
      { Flight.fl_trace = trace;
        fl_key =
          (match Protocol.coalesce_key request with
           | Some k -> k
           | None -> Protocol.kind_name request);
        fl_outcome =
          (match response with
           | Protocol.Result _ -> "ok"
           | Protocol.Failure (code, _) -> Protocol.code_to_string code);
        fl_coalesced = !coalesced;
        fl_queue_us = queue_us;
        fl_run_us = total_us -. queue_us;
        fl_engine =
          (match request with
           | Protocol.Tune { engine; _ } | Protocol.Run { engine; _ } ->
             Pipeline.engine_to_string engine
           | _ -> "");
        fl_store_hit = Obs.trace_counter_value !exec_trace "store.disk.hit" > 0
      }
    in
    Flight.record t.flight entry;
    (match response with
     | Protocol.Failure (Protocol.Internal, _) ->
       (* a worker died (or exhausted retries): leave the recent past on
          stderr while it is still fresh *)
       Flight.dump stderr t.flight
     | _ -> ());
    (response, trace)
  in
  match request with
  | Protocol.Ping -> finish (Protocol.Result (Json.Obj [ ("pong", Json.Bool true) ]))
  | Protocol.Stats ->
    (* answered inline so observability survives overload: a full queue
       must never make the daemon opaque *)
    finish (Protocol.Result (stats_json t))
  | Protocol.Shutdown ->
    Mutex.lock t.lock;
    t.draining <- true;
    Mutex.unlock t.lock;
    finish (Protocol.Result (Json.Obj [ ("draining", Json.Bool true) ]))
  | Protocol.Load_isa { path } ->
    (* answered inline: registration is cheap, and it is safe against
       in-flight jobs — the registry publishes immutable copy-on-write
       snapshots, so worker domains mid-tensorize read consistently
       while a pack loads, and the loader's own lock keeps a pack's
       conflict-check-then-register atomic (never half-loaded) *)
    (match Unit_isadsl.Loader.load_file path with
     | Ok info ->
       finish
         (Protocol.Result
            (Json.Obj
               [ ("pack", Json.Str info.Unit_isadsl.Loader.pk_source);
                 ( "instructions",
                   Json.Arr
                     (List.map
                        (fun (name, digest, status) ->
                          Json.Obj
                            [ ("name", Json.Str name);
                              ("digest", Json.Str digest);
                              ( "status",
                                Json.Str
                                  (match status with
                                   | Unit_isadsl.Loader.Added -> "added"
                                   | Unit_isadsl.Loader.Idempotent ->
                                     "idempotent") )
                            ])
                        info.Unit_isadsl.Loader.pk_instructions) );
                 ( "warnings",
                   Json.Arr
                     (List.map
                        (fun d -> Json.Str (Unit_tir.Diag.to_string d))
                        info.Unit_isadsl.Loader.pk_warnings) )
               ]))
     | Error ds ->
       finish
         (Protocol.Failure
            ( Protocol.Bad_request,
              String.concat "; "
                (List.map Unit_tir.Diag.to_string ds) )))
  | Protocol.Metrics ->
    finish
      (Protocol.Result
         (Json.Obj
            [ ("content_type", Json.Str Metrics.content_type);
              ("body", Json.Str (Metrics.render ()))
            ]))
  | Protocol.Trace { id } ->
    (match Obs.trace_chrome id with
     | Some doc -> finish (Protocol.Result doc)
     | None ->
       finish
         (Protocol.Failure
            ( Protocol.Bad_request,
              Printf.sprintf "unknown trace_id %S (never begun, or evicted)"
                id )))
  | Protocol.Flight { last; errors_only; slower_than_us } ->
    finish (Protocol.Result (flight_json t ~last ~errors_only ~slower_than_us))
  | Protocol.Tune _ | Protocol.Run _ | Protocol.Explain _ ->
    let key = Option.get (Protocol.coalesce_key request) in
    Mutex.lock t.lock;
    if t.draining then begin
      Mutex.unlock t.lock;
      finish (Protocol.Failure (Protocol.Draining, "daemon is shutting down"))
    end
    else begin
      match Hashtbl.find_opt t.inflight key with
      | Some job ->
        (* coalesce: adopt the in-flight job and share its response *)
        Atomic.incr t.n_coalesced;
        Obs.incr c_coalesced;
        Mutex.unlock t.lock;
        coalesced := true;
        exec_trace := job.jb_trace;
        queued_job := Some job;
        finish (mark_coalesced ~leader:job.jb_trace (await job))
      | None ->
        if Queue.length t.queue >= t.cfg.queue_cap then begin
          Atomic.incr t.n_overloaded;
          Obs.incr c_overloaded;
          Mutex.unlock t.lock;
          finish
            (Protocol.Failure
               ( Protocol.Overloaded,
                 Printf.sprintf "queue full (%d queued, cap %d)"
                   (Queue.length t.queue) t.cfg.queue_cap ))
        end
        else begin
          let job =
            { jb_key = key; jb_trace = trace; jb_request = request;
              jb_mutex = Mutex.create (); jb_cond = Condition.create ();
              jb_start = t0; jb_done = false;
              jb_response = Protocol.Failure (Protocol.Internal, "unset")
            }
          in
          Hashtbl.add t.inflight key job;
          Queue.push job t.queue;
          Condition.signal t.have_work;
          Mutex.unlock t.lock;
          queued_job := Some job;
          finish (await job)
        end
    end

let submit t request = fst (submit_traced t request)

let draining t =
  Mutex.lock t.lock;
  let d = t.draining in
  Mutex.unlock t.lock;
  d

let drain t =
  Mutex.lock t.lock;
  t.draining <- true;
  t.stopping <- true;
  Condition.broadcast t.have_work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

(* ---------- wire loop ---------- *)

let try_write_frame fd payload =
  match Wire.write_frame fd payload with
  | () -> true
  | exception Unix.Unix_error (_, _, _) -> false

let respond ?trace_id fd response =
  try_write_frame fd (Json.to_string (Protocol.response_to_json ?trace_id response))

let serve_connection t fd =
  let rec loop () =
    match Wire.read_frame fd with
    | Error Wire.Closed -> ()
    | Error (Wire.Truncated _ as e) | Error (Wire.Oversized _ as e) ->
      (* the stream is unrecoverable (we cannot resynchronize on frame
         boundaries): answer if the peer still listens, then hang up *)
      ignore
        (respond fd
           (Protocol.Failure (Protocol.Bad_request, Wire.error_to_string e))
          : bool)
    | Ok payload ->
      let wrote =
        match Json.parse payload with
        | Error m ->
          respond fd
            (Protocol.Failure (Protocol.Bad_request, "malformed JSON: " ^ m))
        | Ok j ->
          (match Protocol.trace_id_of_json j with
           | Error m -> respond fd (Protocol.Failure (Protocol.Bad_request, m))
           | Ok trace_id ->
             (match Protocol.request_of_json j with
              | Error m ->
                (* echo a well-formed client trace id even on a bad
                   request, so the client can still correlate *)
                respond ?trace_id fd
                  (Protocol.Failure (Protocol.Bad_request, m))
              | Ok request ->
                let response, tid = submit_traced t ?trace_id request in
                respond ~trace_id:tid fd response))
      in
      if wrote then loop ()
  in
  loop ()
