(** Per-key mutual exclusion for idempotent, memoized work.

    The pipeline's kernel memo deliberately compiles {e outside} its
    lock (latecomers adopt the first insert), so two domains missing on
    the same workload can both run the expensive tuner sweep.  Wrapping
    the compile in [with_key] closes that hole at the server layer: the
    first caller of a key computes while holders of the same key block;
    when they proceed, the underlying memo hit makes their call cheap.
    This is what turns "N concurrent requests" into "exactly one tune",
    across request kinds (a [run] and a [tune] of the same workload
    share a flight). *)

type t

val create : unit -> t

val with_key : t -> string -> (unit -> 'a) -> 'a * bool
(** Run [f] holding [key]'s mutex.  The boolean is [true] iff another
    holder of the same key was in flight when this caller arrived (it
    joined an existing flight rather than leading a fresh one).
    Exceptions from [f] propagate; the key is always released. *)
