(** The daemon's framing layer: 4-byte big-endian length prefix + raw
    payload (JSON by convention, but this layer does not care).

    Robustness contract — what the fuzz tests pin:
    - {!read_frame} never raises on bad {e data} and never reads past the
      frame it was asked for; every malformed input maps to a structured
      {!error} (it can still raise [Unix.Unix_error] on genuine I/O
      failures of the descriptor itself);
    - a length header beyond {!max_frame} (or negative) is rejected
      {e before} any payload allocation, so a hostile header cannot make
      the daemon allocate 2 GB;
    - EOF mid-header or mid-payload is [Truncated], EOF on a frame
      boundary is [Closed] — a well-behaved client hanging up is not an
      error. *)

val max_frame : int
(** 4 MiB — far above any real request/response, far below harm. *)

type error =
  | Closed  (** clean EOF between frames *)
  | Truncated of string  (** EOF mid-frame; says how far it got *)
  | Oversized of int  (** declared length negative or beyond {!max_frame} *)

val error_to_string : error -> string

val read_frame : Unix.file_descr -> (string, error) result
(** Blocking read of one frame (EINTR-safe, short-read-safe). *)

val write_frame : Unix.file_descr -> string -> unit
(** Blocking write of one frame.  Raises [Unix.Unix_error] (e.g. EPIPE)
    when the peer is gone — callers treat that as disconnect. *)

val encode : string -> string
(** Header + payload as one string — for tests that craft byte streams
    (valid, truncated, or corrupted) without a socket. *)
