(* Bounded ring of per-request completion records.  See flight.mli. *)

module Json = Unit_obs.Json

type entry = {
  fl_trace : string;
  fl_key : string;
  fl_outcome : string;
  fl_coalesced : bool;
  fl_queue_us : float;
  fl_run_us : float;
  fl_engine : string;
  fl_store_hit : bool;
}

type t = {
  mu : Mutex.t;
  slots : entry option array;
  mutable next : int;  (* total records ever; next mod cap is the write slot *)
}

let default_cap = 4096

let create ?(cap = default_cap) () =
  if cap < 1 then invalid_arg "Flight.create: cap must be >= 1";
  { mu = Mutex.create (); slots = Array.make cap None; next = 0 }

let cap t = Array.length t.slots

let record t e =
  Mutex.lock t.mu;
  t.slots.(t.next mod Array.length t.slots) <- Some e;
  t.next <- t.next + 1;
  Mutex.unlock t.mu

let recorded t =
  Mutex.lock t.mu;
  let n = t.next in
  Mutex.unlock t.mu;
  n

let total_us e = e.fl_queue_us +. e.fl_run_us

(* Oldest-first snapshot of the live window, then the optional filters:
   [errors_only] keeps non-"ok" outcomes, [slower_than_us] keeps
   requests whose total latency exceeds the bound, and [last] keeps the
   most recent N *after* the other filters. *)
let entries ?last ?(errors_only = false) ?slower_than_us t =
  Mutex.lock t.mu;
  let capn = Array.length t.slots in
  let live = min t.next capn in
  let first = t.next - live in
  let window =
    List.init live (fun i ->
        match t.slots.((first + i) mod capn) with
        | Some e -> e
        | None -> assert false (* slots below [next] are always filled *))
  in
  Mutex.unlock t.mu;
  let window =
    if errors_only then List.filter (fun e -> e.fl_outcome <> "ok") window
    else window
  in
  let window =
    match slower_than_us with
    | None -> window
    | Some bound -> List.filter (fun e -> total_us e > bound) window
  in
  match last with
  | None -> window
  | Some n when n < 0 -> invalid_arg "Flight.entries: last must be >= 0"
  | Some n ->
    let len = List.length window in
    if len <= n then window else List.filteri (fun i _ -> i >= len - n) window

(* exact nearest-rank percentile over the window's total latencies *)
let exact_percentile entries p =
  match entries with
  | [] -> 0.0
  | _ ->
    let arr = Array.of_list (List.map total_us entries) in
    Array.sort compare arr;
    let n = Array.length arr in
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    arr.(max 0 (min (n - 1) (rank - 1)))

let entry_to_json e =
  Json.Obj
    [ ("trace_id", Json.Str e.fl_trace);
      ("key", Json.Str e.fl_key);
      ("outcome", Json.Str e.fl_outcome);
      ("coalesced", Json.Bool e.fl_coalesced);
      ("queue_us", Json.Num e.fl_queue_us);
      ("run_us", Json.Num e.fl_run_us);
      ("engine", Json.Str e.fl_engine);
      ("store_hit", Json.Bool e.fl_store_hit)
    ]

let entry_of_json j =
  let str name = Option.bind (Json.member name j) Json.to_str in
  let num name = Option.bind (Json.member name j) Json.to_num in
  let boolean name =
    match Json.member name j with Some (Json.Bool b) -> Some b | _ -> None
  in
  match (str "trace_id", str "key", str "outcome", boolean "coalesced",
         num "queue_us", num "run_us", str "engine", boolean "store_hit")
  with
  | Some fl_trace, Some fl_key, Some fl_outcome, Some fl_coalesced,
    Some fl_queue_us, Some fl_run_us, Some fl_engine, Some fl_store_hit ->
    Ok { fl_trace; fl_key; fl_outcome; fl_coalesced; fl_queue_us; fl_run_us;
         fl_engine; fl_store_hit }
  | _ -> Error "malformed flight-recorder entry"

let pp_entry ppf e =
  Format.fprintf ppf "%-14s %-40s %-14s %c q=%8.0fus r=%10.0fus %-11s %s"
    e.fl_trace e.fl_key e.fl_outcome
    (if e.fl_coalesced then 'C' else '.')
    e.fl_queue_us e.fl_run_us e.fl_engine
    (if e.fl_store_hit then "store-hit" else "")

let dump ?(last = 32) oc t =
  let window = entries ~last t in
  let total = recorded t in
  Printf.fprintf oc
    "flight recorder: %d request(s) recorded, window cap %d, last %d:\n" total
    (cap t) (List.length window);
  List.iter
    (fun e -> Printf.fprintf oc "  %s\n" (Format.asprintf "%a" pp_entry e))
    window;
  flush oc
