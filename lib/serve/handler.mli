(** The default request handler: one protocol request in, one result
    JSON out, through the cached {!Unit_core.Pipeline} entry points.

    Raising convention (what {!Server} maps to wire errors):
    [Invalid_argument] is the pipeline's deterministic "does not
    tensorize" rejection — mapped to a [not_applicable] response,
    never retried.  Any other exception is treated as transient and
    retried on the {!Unit_store.Warmup.backoff_s} schedule. *)

val handle : Protocol.request -> Unit_obs.Json.t
(** Total over all request kinds, so it can also be called without a
    server (the in-process harness does); [Stats]/[Ping]/[Shutdown] are
    normally intercepted inline by {!Server}. *)

val compiled_for :
  target:Unit_store.Warmup.target -> Protocol.workload -> Unit_core.Pipeline.compiled
(** The tensorize step alone, single-flighted process-wide per
    (target, workload) — concurrent callers of the same workload get
    exactly one tuner sweep regardless of request kind or engine. *)

val shared_tensorize_count : unit -> int
(** How many {!compiled_for} calls joined an existing flight instead of
    leading one (also counted on the [serve.tensorize.shared] Obs
    counter). *)
