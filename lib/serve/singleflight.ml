(* Per-key mutual exclusion: concurrent callers of the same key
   serialize, and every caller after the first learns it shared the
   flight.  See singleflight.mli. *)

type entry = {
  e_mutex : Mutex.t;
  mutable e_refs : int;
}

type t = {
  lock : Mutex.t;
  entries : (string, entry) Hashtbl.t;
}

let create () = { lock = Mutex.create (); entries = Hashtbl.create 64 }

let with_key t key f =
  Mutex.lock t.lock;
  let entry, shared =
    match Hashtbl.find_opt t.entries key with
    | Some e ->
      e.e_refs <- e.e_refs + 1;
      (e, true)
    | None ->
      let e = { e_mutex = Mutex.create (); e_refs = 1 } in
      Hashtbl.add t.entries key e;
      (e, false)
  in
  Mutex.unlock t.lock;
  let release () =
    Mutex.unlock entry.e_mutex;
    Mutex.lock t.lock;
    entry.e_refs <- entry.e_refs - 1;
    if entry.e_refs = 0 then Hashtbl.remove t.entries key;
    Mutex.unlock t.lock
  in
  Mutex.lock entry.e_mutex;
  Fun.protect ~finally:release (fun () -> (f (), shared))
