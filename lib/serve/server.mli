(** The unitd server core: a pool of OCaml 5 worker domains behind a
    bounded admission queue, with request coalescing and graceful drain.

    Life of a request ({!submit}):
    - [Ping]/[Stats]/[Shutdown] are answered inline — control traffic is
      never queued, so [/stats] still answers when the queue is full.
    - Work requests are keyed by {!Protocol.coalesce_key}.  If the same
      key is already in flight, the caller adopts that job and shares
      its response (marked with ["coalesced": true], counted on
      [serve.coalesced]) — many clients asking for the same workload
      trigger exactly one execution.
    - A fresh key meets admission control: a queue at [queue_cap] gets
      an immediate structured [overloaded] response instead of
      unbounded latency.
    - Workers retry transient handler failures up to [retries] times on
      the {!Unit_store.Warmup.backoff_s} schedule;
      [Invalid_argument] (the pipeline's deterministic "does not
      tensorize") maps to [not_applicable] without retrying.
    - After [Shutdown] (or {!drain}), new work gets a [draining]
      response; already-queued jobs still complete.

    Obs surface: [serve.requests] / [serve.completed] /
    [serve.coalesced] / [serve.overloaded] / [serve.retry] /
    [serve.failed] counters, the [serve.latency_us] histogram and the
    [serve.queue_depth] gauge — all interned [~always:true], so
    {!stats_json} and the metrics exposition are truthful even with
    span tracing off.

    Request-scoped tracing: every request is tagged with a trace id —
    the client's, when it supplied one, otherwise server-generated —
    and {!submit_traced} returns it so the wire loop can echo it in the
    response.  Workers run the handler under {!Unit_obs.Obs.with_trace_id},
    so pipeline spans, counter deltas and diags attribute to the
    request; [Trace]/[Metrics]/[Flight] control requests read it all
    back.  Every request additionally leaves one {!Flight} entry, so
    the flight window and [serve.latency_us] observe the same
    population and their percentiles are comparable. *)

type config = {
  domains : int;  (** worker domains *)
  queue_cap : int;  (** admission bound: queued (not in-flight) jobs *)
  retries : int;  (** extra attempts per transiently-failing job *)
}

val default_config : config
(** 4 domains, queue of 64, 1 retry. *)

type t

val create :
  ?fault:(key:string -> attempt:int -> unit) ->
  ?sleep:(float -> unit) ->
  ?handle:(Protocol.request -> Unit_obs.Json.t) ->
  ?flight_cap:int ->
  config ->
  t
(** Start the worker pool.  [handle] defaults to {!Handler.handle}.
    [fault] runs on a worker before each attempt of each job — raising
    from it simulates a worker dying mid-job (fault-injection tests);
    the default does nothing.  [sleep] performs the retry backoff wait
    (default [Unix.sleepf]; tests inject a recorder).  [flight_cap]
    sizes the flight-recorder ring (default {!Flight.default_cap}).
    @raise Invalid_argument on a non-positive pool/queue size, negative
    retries, or a non-positive [flight_cap]. *)

val submit : t -> Protocol.request -> Protocol.response
(** Blocking request/response — safe to call from any domain or thread
    concurrently.  Never raises on request content.
    [submit_traced] with a server-generated trace id. *)

val submit_traced :
  t -> ?trace_id:string -> Protocol.request -> Protocol.response * string
(** Like {!submit}, also returning the trace id the request ran under —
    [trace_id] when given (assumed pre-validated by
    {!Protocol.trace_id_of_json}), server-generated otherwise.  A
    coalesced follower keeps its own id (its response names the
    leader's as ["leader_trace_id"]; the spans live on the leader's
    trace). *)

val flight : t -> Flight.t
(** The server's flight recorder (the bench harness freezes exact
    window percentiles from it). *)

val serve_connection : t -> Unix.file_descr -> unit
(** Run the wire loop on one connection until EOF: read a frame, answer
    it, repeat.  Malformed JSON or an invalid request gets a
    [bad_request] response and the connection continues; a truncated or
    oversized frame gets a final [bad_request] and the connection
    closes (the stream cannot be resynchronized).  Never raises on peer
    behavior.  Does not close [fd]. *)

val stats_json : t -> Unit_obs.Json.t
(** The [/stats] payload: server gauges/counters plus
    {!Unit_obs.Obs.stats_json}. *)

val stats_fields : t -> (string * int) list
(** The server half of {!stats_json}, as data (tests). *)

val draining : t -> bool

val drain : t -> unit
(** Graceful shutdown: stop admitting, let queued jobs finish, join all
    worker domains.  Idempotent-ish: call once, from the owner (not from
    a worker).  After [drain] the server answers control traffic via
    {!submit} but refuses work. *)
