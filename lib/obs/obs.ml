(* Hierarchical trace spans + counters + histograms.

   Concurrency design: spans are appended to a per-domain growable
   buffer reached through [Domain.DLS], so recording never contends —
   the only lock is taken when a domain registers its buffer (once per
   domain) and when a snapshot walks the registry.  Counters are plain
   [Atomic.t] ints.  Histograms take a tiny per-histogram mutex on
   [observe]; they sit on warm paths (per tuner sweep, per executor
   level), not hot ones.

   The [enabled] flag is the single gate: when off, [start] returns
   [null_span] before touching DLS, and [incr]/[add]/[observe] return
   immediately.  [stop] deliberately does NOT check the flag so a span
   opened just before tracing is switched off is still closed — the
   well-formedness invariant (every recorded span closed, children
   nested in parents) must hold whenever recording stops. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Span timing rides the POSIX monotonic clock (C stub — OCaml 5.1's
   Unix has no clock_gettime), so an NTP step mid-span cannot produce a
   negative duration.  When the stub reports failure we fall back to
   gettimeofday, the pre-PR-10 behavior. *)
external monotonic_s : unit -> float = "unit_obs_monotonic_s"

let monotonic_available = monotonic_s () >= 0.0
let now () = if monotonic_available then monotonic_s () else Unix.gettimeofday ()

(* ---------- trace context ---------- *)

(* The request-scoped trace id, carried in Domain.DLS: the daemon's
   worker domain sets it before calling the handler, and every span
   opened / counter bumped / diag tagged on that domain until it is
   cleared belongs to that request.  Orthogonal to [enabled]: span
   *recording* stays gated, but per-trace counter attribution is always
   on while a context is set, so the flight recorder stays truthful with
   tracing off. *)
let trace_key : string option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_trace_id () = Domain.DLS.get trace_key
let set_trace_id id = Domain.DLS.set trace_key id

let with_trace_id id f =
  let prev = Domain.DLS.get trace_key in
  Domain.DLS.set trace_key id;
  Fun.protect ~finally:(fun () -> Domain.DLS.set trace_key prev) f

(* ---------- spans ---------- *)

type span = int

let null_span = -1

type rec_span = {
  rs_name : string;
  mutable rs_detail : string;
  rs_parent : int;
  rs_trace : string; (* "" = not request-scoped *)
  rs_begin : float;
  mutable rs_end : float; (* -1.0 while open *)
}

let dummy_rec =
  { rs_name = ""; rs_detail = ""; rs_parent = -1; rs_trace = ""; rs_begin = 0.; rs_end = 0. }

type buffer = {
  b_domain : int;
  mutable b_spans : rec_span array;
  mutable b_len : int;
  mutable b_stack : int list; (* indices of open spans, innermost first *)
}

let registry : buffer list ref = ref []
let registry_mu = Mutex.create ()

let make_buffer () =
  let b =
    {
      b_domain = (Domain.self () :> int);
      b_spans = Array.make 64 dummy_rec;
      b_len = 0;
      b_stack = [];
    }
  in
  Mutex.lock registry_mu;
  registry := b :: !registry;
  Mutex.unlock registry_mu;
  b

let buffer_key = Domain.DLS.new_key make_buffer

let push b r =
  if b.b_len = Array.length b.b_spans then begin
    let bigger = Array.make (2 * b.b_len) dummy_rec in
    Array.blit b.b_spans 0 bigger 0 b.b_len;
    b.b_spans <- bigger
  end;
  b.b_spans.(b.b_len) <- r;
  b.b_len <- b.b_len + 1;
  b.b_len - 1

(* ---------- per-trace store ---------- *)

(* Finished state of each request-scoped trace: closed spans (copied out
   of the domain buffers as they close), counter deltas, and tagged
   diagnostics.  Bounded FIFO by trace id — a long-lived daemon retains
   the last [trace_cap] traces. *)

type span_record = {
  sp_name : string;
  sp_detail : string;
  sp_domain : int;
  sp_id : int;
  sp_parent : int;
  sp_trace : string;
  sp_begin : float;
  sp_end : float;
}

type trace_data = {
  td_id : string;
  mutable td_spans : span_record list; (* newest first *)
  td_counters : (string, int) Hashtbl.t;
  mutable td_diags : string list; (* newest first *)
}

let traces_tbl : (string, trace_data) Hashtbl.t = Hashtbl.create 64
let traces_order : string Queue.t = Queue.create ()
let traces_mu = Mutex.create ()
let trace_cap = ref 256

let set_trace_cap n =
  if n < 1 then invalid_arg "Obs.set_trace_cap: cap must be >= 1";
  Mutex.lock traces_mu;
  trace_cap := n;
  while Queue.length traces_order > n do
    Hashtbl.remove traces_tbl (Queue.pop traces_order)
  done;
  Mutex.unlock traces_mu

let trace_begin id =
  Mutex.lock traces_mu;
  if not (Hashtbl.mem traces_tbl id) then begin
    Hashtbl.add traces_tbl id
      { td_id = id; td_spans = []; td_counters = Hashtbl.create 8; td_diags = [] };
    Queue.push id traces_order;
    while Queue.length traces_order > !trace_cap do
      Hashtbl.remove traces_tbl (Queue.pop traces_order)
    done
  end;
  Mutex.unlock traces_mu

let trace_known id =
  Mutex.lock traces_mu;
  let known = Hashtbl.mem traces_tbl id in
  Mutex.unlock traces_mu;
  known

(* Attribution helpers: silently drop activity for ids never begun (or
   already evicted) so a stray context cannot grow the table. *)
let trace_attr_span tr sp =
  Mutex.lock traces_mu;
  (match Hashtbl.find_opt traces_tbl tr with
   | Some td -> td.td_spans <- sp :: td.td_spans
   | None -> ());
  Mutex.unlock traces_mu

let trace_attr_counter tr name n =
  Mutex.lock traces_mu;
  (match Hashtbl.find_opt traces_tbl tr with
   | Some td ->
     Hashtbl.replace td.td_counters name
       (n + Option.value ~default:0 (Hashtbl.find_opt td.td_counters name))
   | None -> ());
  Mutex.unlock traces_mu

let trace_diag msg =
  match Domain.DLS.get trace_key with
  | None -> ()
  | Some tr ->
    Mutex.lock traces_mu;
    (match Hashtbl.find_opt traces_tbl tr with
     | Some td -> td.td_diags <- msg :: td.td_diags
     | None -> ());
    Mutex.unlock traces_mu

let trace_spans id =
  Mutex.lock traces_mu;
  let sps = Option.map (fun td -> td.td_spans) (Hashtbl.find_opt traces_tbl id) in
  Mutex.unlock traces_mu;
  Option.map
    (List.sort (fun a b -> compare (a.sp_domain, a.sp_id) (b.sp_domain, b.sp_id)))
    sps

let trace_counters id =
  Mutex.lock traces_mu;
  let cs =
    Option.map
      (fun td -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) td.td_counters [])
      (Hashtbl.find_opt traces_tbl id)
  in
  Mutex.unlock traces_mu;
  Option.map (List.sort compare) cs

let trace_counter_value id name =
  Mutex.lock traces_mu;
  let v =
    match Hashtbl.find_opt traces_tbl id with
    | Some td -> Option.value ~default:0 (Hashtbl.find_opt td.td_counters name)
    | None -> 0
  in
  Mutex.unlock traces_mu;
  v

let trace_diags id =
  Mutex.lock traces_mu;
  let ds = Option.map (fun td -> List.rev td.td_diags) (Hashtbl.find_opt traces_tbl id) in
  Mutex.unlock traces_mu;
  ds

let trace_ids () =
  Mutex.lock traces_mu;
  let ids = List.of_seq (Queue.to_seq traces_order) in
  Mutex.unlock traces_mu;
  ids

(* ---------- span recording ---------- *)

let start ?(detail = "") name =
  if not (Atomic.get enabled_flag) then null_span
  else begin
    let b = Domain.DLS.get buffer_key in
    let parent = match b.b_stack with [] -> -1 | i :: _ -> i in
    let trace = Option.value ~default:"" (Domain.DLS.get trace_key) in
    let i =
      push b
        { rs_name = name; rs_detail = detail; rs_parent = parent;
          rs_trace = trace; rs_begin = now (); rs_end = -1.0 }
    in
    b.b_stack <- i :: b.b_stack;
    i
  end

let stop tok =
  if tok >= 0 then begin
    let b = Domain.DLS.get buffer_key in
    (* A [reset] between start and stop invalidates the token. *)
    if tok < b.b_len && List.mem tok b.b_stack then begin
      let t = now () in
      (* Pop to [tok], force-closing any child left open so the
         recorded tree stays well-formed even on sloppy call sites. *)
      let rec pop = function
        | [] -> []
        | i :: rest ->
          let r = b.b_spans.(i) in
          if r.rs_end < r.rs_begin then begin
            r.rs_end <- t;
            (* request-scoped spans are copied to the per-trace store
               the moment they close, so a `trace` fetch never has to
               walk every domain's whole history *)
            if r.rs_trace <> "" then
              trace_attr_span r.rs_trace
                { sp_name = r.rs_name; sp_detail = r.rs_detail;
                  sp_domain = b.b_domain; sp_id = i; sp_parent = r.rs_parent;
                  sp_trace = r.rs_trace; sp_begin = r.rs_begin; sp_end = r.rs_end }
          end;
          if i = tok then rest else pop rest
      in
      b.b_stack <- pop b.b_stack
    end
  end

let with_span ?detail name f =
  let tok = start ?detail name in
  Fun.protect ~finally:(fun () -> stop tok) f

(* Append detail to an open span discovered along the way (e.g. the
   executor annotating an operator span with the computed output shape).
   Same-domain only, like [stop]: the token indexes this domain's
   buffer. *)
let annotate tok detail =
  if tok >= 0 && detail <> "" then begin
    let b = Domain.DLS.get buffer_key in
    if tok < b.b_len then begin
      let r = b.b_spans.(tok) in
      r.rs_detail <- (if r.rs_detail = "" then detail else r.rs_detail ^ " " ^ detail)
    end
  end

(* ---------- counters ---------- *)

type counter = {
  c_name : string;
  c_val : int Atomic.t;
  c_always : bool;
}

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let counters_mu = Mutex.create ()

let counter ?(always = false) name =
  Mutex.lock counters_mu;
  let c =
    match Hashtbl.find_opt counters_tbl name with
    | Some c -> c (* the flag is fixed at first intern *)
    | None ->
      let c = { c_name = name; c_val = Atomic.make 0; c_always = always } in
      Hashtbl.add counters_tbl name c;
      c
  in
  Mutex.unlock counters_mu;
  c

(* Per-trace attribution is gated on the trace context, not on
   [enabled]: a daemon running with tracing off still accounts each
   request's counter activity to its trace (the flight recorder's
   store-hit bit depends on it).  Without a context this is one DLS read
   and a branch. *)
let attribute c n =
  match Domain.DLS.get trace_key with
  | None -> ()
  | Some tr -> trace_attr_counter tr c.c_name n

let incr c =
  if c.c_always || Atomic.get enabled_flag then Atomic.incr c.c_val;
  attribute c 1

let add c n =
  if c.c_always || Atomic.get enabled_flag then
    ignore (Atomic.fetch_and_add c.c_val n);
  attribute c n

let value c = Atomic.get c.c_val

(* ---------- histograms ---------- *)

type hist_stats = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

(* Percentiles come from reservoir sampling (Vitter's Algorithm R): the
   first [reservoir_cap] observations are kept verbatim, after which the
   i-th observation replaces a uniformly random slot with probability
   cap/i, so the reservoir stays a uniform sample of the whole stream.
   Up to [reservoir_cap] observations the percentiles are exact
   (nearest-rank on the sorted buffer); beyond that they are unbiased
   estimates.  Randomness is a small deterministic per-histogram LCG —
   no dependence on the global [Random] state, and identical runs
   produce identical reservoirs. *)
let reservoir_cap = 512

(* Alongside the reservoir, every histogram keeps exact counts in fixed
   log-spaced buckets (upper bounds 2^0, 2^1, ... 2^41, +Inf — values
   <= 1, including zero and negatives, land in the first bucket).
   Bucket-derived quantiles are exact-by-bucket: the returned bound is a
   true upper bound on the nearest-rank percentile of the *whole*
   stream, never a sample estimate, at a resolution of one power of
   two.  This is also what the Prometheus exposition renders. *)
let n_buckets = 43

let bucket_bounds =
  Array.init n_buckets (fun i ->
      if i = n_buckets - 1 then infinity else float_of_int (1 lsl i))

let bucket_index x =
  if x <= 1.0 then 0
  else if Float.is_nan x then n_buckets - 1
  else begin
    let i = int_of_float (Float.ceil (Float.log2 x)) in
    if i < 0 then 0 else if i >= n_buckets - 1 then n_buckets - 1 else i
  end

type histogram = {
  hg_name : string;
  hg_mu : Mutex.t;
  hg_always : bool;
  mutable hg_count : int;
  mutable hg_sum : float;
  mutable hg_min : float;
  mutable hg_max : float;
  hg_reservoir : float array;  (* first [min count cap] slots are live *)
  mutable hg_rng : int;  (* LCG state *)
  hg_buckets : int array;  (* per-bucket (non-cumulative) counts *)
}

let hists_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16
let hists_mu = Mutex.create ()

let histogram ?(always = false) name =
  Mutex.lock hists_mu;
  let h =
    match Hashtbl.find_opt hists_tbl name with
    | Some h -> h (* the flag is fixed at first intern *)
    | None ->
      let h =
        { hg_name = name; hg_mu = Mutex.create (); hg_always = always;
          hg_count = 0; hg_sum = 0.; hg_min = 0.; hg_max = 0.;
          hg_reservoir = Array.make reservoir_cap 0.0;
          hg_rng = Hashtbl.hash name lor 1;
          hg_buckets = Array.make n_buckets 0
        }
      in
      Hashtbl.add hists_tbl name h;
      h
  in
  Mutex.unlock hists_mu;
  h

(* 48-bit LCG (the classic drand48 multiplier); callers hold [hg_mu]. *)
let lcg_next h bound =
  h.hg_rng <- (h.hg_rng * 25214903917 + 11) land 0xFFFFFFFFFFFF;
  (h.hg_rng lsr 16) mod bound

let observe h x =
  if h.hg_always || Atomic.get enabled_flag then begin
    Mutex.lock h.hg_mu;
    if h.hg_count = 0 then begin
      h.hg_min <- x;
      h.hg_max <- x
    end
    else begin
      if x < h.hg_min then h.hg_min <- x;
      if x > h.hg_max then h.hg_max <- x
    end;
    h.hg_count <- h.hg_count + 1;
    h.hg_sum <- h.hg_sum +. x;
    h.hg_buckets.(bucket_index x) <- h.hg_buckets.(bucket_index x) + 1;
    (if h.hg_count <= reservoir_cap then h.hg_reservoir.(h.hg_count - 1) <- x
     else begin
       let j = lcg_next h h.hg_count in
       if j < reservoir_cap then h.hg_reservoir.(j) <- x
     end);
    Mutex.unlock h.hg_mu
  end

(* nearest-rank percentile on a sorted sample *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n /. 100.0)) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))
  end

let hist_stats h =
  Mutex.lock h.hg_mu;
  let live = Stdlib.min h.hg_count reservoir_cap in
  let sample = Array.sub h.hg_reservoir 0 live in
  let s =
    { h_count = h.hg_count; h_sum = h.hg_sum; h_min = h.hg_min; h_max = h.hg_max;
      h_p50 = 0.; h_p90 = 0.; h_p99 = 0. }
  in
  Mutex.unlock h.hg_mu;
  Array.sort compare sample;
  { s with
    h_p50 = percentile sample 50.0;
    h_p90 = percentile sample 90.0;
    h_p99 = percentile sample 99.0
  }

let hist_buckets h =
  Mutex.lock h.hg_mu;
  let b = Array.copy h.hg_buckets in
  Mutex.unlock h.hg_mu;
  b

(* Exact-by-bucket quantile: the upper bound of the bucket holding the
   nearest-rank q-th percentile of the whole stream (not the
   reservoir).  0.0 on an empty histogram. *)
let bucket_quantile h q =
  let buckets = hist_buckets h in
  let total = Array.fold_left ( + ) 0 buckets in
  if total = 0 then 0.0
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int total /. 100.0)))
    in
    let rec walk i seen =
      if i >= n_buckets - 1 then bucket_bounds.(n_buckets - 1)
      else begin
        let seen = seen + buckets.(i) in
        if seen >= rank then bucket_bounds.(i) else walk (i + 1) seen
      end
    in
    walk 0 0
  end

(* ---------- gauges ---------- *)

(* Callback gauges for live values (queue depth, cache size) that have
   no meaningful counter semantics.  Registration replaces by name so a
   re-created owner (e.g. a fresh test server) takes the slot over. *)
let gauges_tbl : (string, unit -> float) Hashtbl.t = Hashtbl.create 8
let gauges_mu = Mutex.create ()

let register_gauge name f =
  Mutex.lock gauges_mu;
  Hashtbl.replace gauges_tbl name f;
  Mutex.unlock gauges_mu

let gauges () =
  Mutex.lock gauges_mu;
  let fs = Hashtbl.fold (fun k f acc -> (k, f) :: acc) gauges_tbl [] in
  Mutex.unlock gauges_mu;
  (* sample outside the lock; a dead owner's callback must not take the
     registry down *)
  List.sort compare
    (List.filter_map
       (fun (k, f) -> match f () with v -> Some (k, v) | exception _ -> None)
       fs)

(* ---------- reset ---------- *)

let reset () =
  Mutex.lock registry_mu;
  (* Truncate in place: the owning domains' DLS slots still reference
     these buffers, so we must not drop them from under a live domain. *)
  List.iter
    (fun b ->
      b.b_len <- 0;
      b.b_stack <- [])
    !registry;
  Mutex.unlock registry_mu;
  Mutex.lock counters_mu;
  Hashtbl.iter (fun _ c -> Atomic.set c.c_val 0) counters_tbl;
  Mutex.unlock counters_mu;
  Mutex.lock hists_mu;
  Hashtbl.iter
    (fun _ h ->
      Mutex.lock h.hg_mu;
      h.hg_count <- 0;
      h.hg_sum <- 0.;
      h.hg_min <- 0.;
      h.hg_max <- 0.;
      Array.fill h.hg_reservoir 0 reservoir_cap 0.0;
      Array.fill h.hg_buckets 0 n_buckets 0;
      h.hg_rng <- Hashtbl.hash h.hg_name lor 1;
      Mutex.unlock h.hg_mu)
    hists_tbl;
  Mutex.unlock hists_mu;
  Mutex.lock traces_mu;
  Hashtbl.reset traces_tbl;
  Queue.clear traces_order;
  Mutex.unlock traces_mu

(* ---------- snapshots ---------- *)

let span_closed sp = sp.sp_end >= sp.sp_begin

let spans () =
  Mutex.lock registry_mu;
  let bufs = !registry in
  Mutex.unlock registry_mu;
  let out =
    List.concat_map
      (fun b ->
        List.init b.b_len (fun i ->
            let r = b.b_spans.(i) in
            {
              sp_name = r.rs_name;
              sp_detail = r.rs_detail;
              sp_domain = b.b_domain;
              sp_id = i;
              sp_parent = r.rs_parent;
              sp_trace = r.rs_trace;
              sp_begin = r.rs_begin;
              sp_end = r.rs_end;
            }))
      bufs
  in
  List.sort (fun a b -> compare (a.sp_domain, a.sp_id) (b.sp_domain, b.sp_id)) out

let counters () =
  Mutex.lock counters_mu;
  let out = Hashtbl.fold (fun _ c acc -> (c.c_name, Atomic.get c.c_val) :: acc) counters_tbl [] in
  Mutex.unlock counters_mu;
  List.sort compare out

let histograms () =
  Mutex.lock hists_mu;
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) hists_tbl [] in
  Mutex.unlock hists_mu;
  List.sort compare (List.map (fun h -> (h.hg_name, hist_stats h)) hs)

let histogram_handles () =
  Mutex.lock hists_mu;
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) hists_tbl [] in
  Mutex.unlock hists_mu;
  List.sort (fun a b -> compare a.hg_name b.hg_name) hs
  |> List.map (fun h -> (h.hg_name, h))

(* ---------- aggregation & sinks ---------- *)

type agg = {
  agg_name : string;
  agg_count : int;
  agg_total : float;
  agg_min : float;
  agg_max : float;
}

let aggregate_spans sps =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      let cur =
        match Hashtbl.find_opt tbl sp.sp_name with
        | Some a -> a
        | None -> { agg_name = sp.sp_name; agg_count = 0; agg_total = 0.; agg_min = infinity; agg_max = 0. }
      in
      let a =
        if span_closed sp then begin
          let d = sp.sp_end -. sp.sp_begin in
          {
            cur with
            agg_count = cur.agg_count + 1;
            agg_total = cur.agg_total +. d;
            agg_min = Float.min cur.agg_min d;
            agg_max = Float.max cur.agg_max d;
          }
        end
        else { cur with agg_count = cur.agg_count + 1 }
      in
      Hashtbl.replace tbl sp.sp_name a)
    sps;
  let out = Hashtbl.fold (fun _ a acc -> a :: acc) tbl [] in
  let out = List.map (fun a -> if a.agg_min = infinity then { a with agg_min = 0. } else a) out in
  List.sort (fun a b -> compare a.agg_name b.agg_name) out

let pp_summary_aggs ppf aggs =
  Format.fprintf ppf "%-34s %7s %12s %12s %12s@."
    "span" "count" "total ms" "min ms" "max ms";
  List.iter
    (fun a ->
      Format.fprintf ppf "%-34s %7d %12.3f %12.3f %12.3f@."
        a.agg_name a.agg_count (a.agg_total *. 1e3) (a.agg_min *. 1e3) (a.agg_max *. 1e3))
    aggs

let pp_counters ppf cs =
  Format.fprintf ppf "%-34s %12s@." "counter" "value";
  List.iter (fun (name, v) -> Format.fprintf ppf "%-34s %12d@." name v) cs

let pp_histograms ppf hs =
  Format.fprintf ppf "%-34s %7s %12s %12s %12s %12s %12s %12s@."
    "histogram" "count" "min" "mean" "p50" "p90" "p99" "max";
  List.iter
    (fun (name, s) ->
      let mean = if s.h_count = 0 then 0. else s.h_sum /. float_of_int s.h_count in
      Format.fprintf ppf "%-34s %7d %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f@."
        name s.h_count s.h_min mean s.h_p50 s.h_p90 s.h_p99 s.h_max)
    hs

let pp_summary ppf () =
  let aggs = aggregate_spans (spans ()) in
  if aggs <> [] then Format.fprintf ppf "-- spans --@.%a" pp_summary_aggs aggs;
  let cs = counters () in
  if cs <> [] then Format.fprintf ppf "-- counters --@.%a" pp_counters cs;
  let hs = List.filter (fun (_, s) -> s.h_count > 0) (histograms ()) in
  if hs <> [] then Format.fprintf ppf "-- histograms --@.%a" pp_histograms hs

let chrome_events sps =
  let t0 = List.fold_left (fun acc sp -> Float.min acc sp.sp_begin) infinity sps in
  let t0 = if t0 = infinity then 0. else t0 in
  List.filter_map
    (fun sp ->
      if not (span_closed sp) then None
      else
        let base =
          [
            ("name", Json.Str sp.sp_name);
            ("cat", Json.Str "unit");
            ("ph", Json.Str "X");
            ("pid", Json.Num 1.);
            ("tid", Json.Num (float_of_int sp.sp_domain));
            ("ts", Json.Num ((sp.sp_begin -. t0) *. 1e6));
            ("dur", Json.Num ((sp.sp_end -. sp.sp_begin) *. 1e6));
          ]
        in
        let arg_fields =
          (if sp.sp_detail = "" then [] else [ ("detail", Json.Str sp.sp_detail) ])
          @ if sp.sp_trace = "" then [] else [ ("trace_id", Json.Str sp.sp_trace) ]
        in
        let args =
          if arg_fields = [] then [] else [ ("args", Json.Obj arg_fields) ]
        in
        Some (Json.Obj (base @ args)))
    sps

let chrome_trace () =
  let events = chrome_events (spans ()) in
  let counters_json = List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) (counters ()) in
  let hists_json =
    List.map
      (fun (k, s) ->
        ( k,
          Json.Obj
            [
              ("count", Json.Num (float_of_int s.h_count));
              ("sum", Json.Num s.h_sum);
              ("min", Json.Num s.h_min);
              ("max", Json.Num s.h_max);
              ("p50", Json.Num s.h_p50);
              ("p90", Json.Num s.h_p90);
              ("p99", Json.Num s.h_p99);
            ] ))
      (histograms ())
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr events);
      ("displayTimeUnit", Json.Str "ms");
      ("counters", Json.Obj counters_json);
      ("histograms", Json.Obj hists_json);
    ]

let stats_json () =
  let counters_json =
    List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) (counters ())
  in
  let hists_json =
    List.map
      (fun (k, s) ->
        ( k,
          Json.Obj
            [
              ("count", Json.Num (float_of_int s.h_count));
              ("sum", Json.Num s.h_sum);
              ("min", Json.Num s.h_min);
              ("max", Json.Num s.h_max);
              ("p50", Json.Num s.h_p50);
              ("p90", Json.Num s.h_p90);
              ("p99", Json.Num s.h_p99);
            ] ))
      (List.filter (fun (_, s) -> s.h_count > 0) (histograms ()))
  in
  let spans_json =
    List.map
      (fun a ->
        Json.Obj
          [
            ("name", Json.Str a.agg_name);
            ("count", Json.Num (float_of_int a.agg_count));
            ("total_s", Json.Num a.agg_total);
          ])
      (aggregate_spans (spans ()))
  in
  Json.Obj
    [
      ("enabled", Json.Bool (enabled ()));
      ("counters", Json.Obj counters_json);
      ("histograms", Json.Obj hists_json);
      ("spans", Json.Arr spans_json);
    ]

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (chrome_trace ())))

(* The finished span tree of one request-scoped trace, as a Chrome
   trace document: only the spans/counters/diags attributed to [id].
   [None] for an id never begun (or already evicted from the bounded
   trace store). *)
let trace_chrome id =
  match trace_spans id with
  | None -> None
  | Some sps ->
    let counters_json =
      List.map
        (fun (k, v) -> (k, Json.Num (float_of_int v)))
        (Option.value ~default:[] (trace_counters id))
    in
    let diags_json =
      List.map (fun d -> Json.Str d) (Option.value ~default:[] (trace_diags id))
    in
    Some
      (Json.Obj
         [
           ("trace_id", Json.Str id);
           ("traceEvents", Json.Arr (chrome_events sps));
           ("displayTimeUnit", Json.Str "ms");
           ("counters", Json.Obj counters_json);
           ("diags", Json.Arr diags_json);
         ])

let tensorize_stages =
  [
    "tensorize.inspect";
    "tensorize.reorganize";
    "tensorize.tune";
    "tensorize.lower_replace";
    "tensorize.analyze";
  ]
