(* Hierarchical trace spans + counters + histograms.

   Concurrency design: spans are appended to a per-domain growable
   buffer reached through [Domain.DLS], so recording never contends —
   the only lock is taken when a domain registers its buffer (once per
   domain) and when a snapshot walks the registry.  Counters are plain
   [Atomic.t] ints.  Histograms take a tiny per-histogram mutex on
   [observe]; they sit on warm paths (per tuner sweep, per executor
   level), not hot ones.

   The [enabled] flag is the single gate: when off, [start] returns
   [null_span] before touching DLS, and [incr]/[add]/[observe] return
   immediately.  [stop] deliberately does NOT check the flag so a span
   opened just before tracing is switched off is still closed — the
   well-formedness invariant (every recorded span closed, children
   nested in parents) must hold whenever recording stops. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let now () = Unix.gettimeofday ()

(* ---------- spans ---------- *)

type span = int

let null_span = -1

type rec_span = {
  rs_name : string;
  mutable rs_detail : string;
  rs_parent : int;
  rs_begin : float;
  mutable rs_end : float; (* -1.0 while open *)
}

let dummy_rec = { rs_name = ""; rs_detail = ""; rs_parent = -1; rs_begin = 0.; rs_end = 0. }

type buffer = {
  b_domain : int;
  mutable b_spans : rec_span array;
  mutable b_len : int;
  mutable b_stack : int list; (* indices of open spans, innermost first *)
}

let registry : buffer list ref = ref []
let registry_mu = Mutex.create ()

let make_buffer () =
  let b =
    {
      b_domain = (Domain.self () :> int);
      b_spans = Array.make 64 dummy_rec;
      b_len = 0;
      b_stack = [];
    }
  in
  Mutex.lock registry_mu;
  registry := b :: !registry;
  Mutex.unlock registry_mu;
  b

let buffer_key = Domain.DLS.new_key make_buffer

let push b r =
  if b.b_len = Array.length b.b_spans then begin
    let bigger = Array.make (2 * b.b_len) dummy_rec in
    Array.blit b.b_spans 0 bigger 0 b.b_len;
    b.b_spans <- bigger
  end;
  b.b_spans.(b.b_len) <- r;
  b.b_len <- b.b_len + 1;
  b.b_len - 1

let start ?(detail = "") name =
  if not (Atomic.get enabled_flag) then null_span
  else begin
    let b = Domain.DLS.get buffer_key in
    let parent = match b.b_stack with [] -> -1 | i :: _ -> i in
    let i =
      push b
        { rs_name = name; rs_detail = detail; rs_parent = parent; rs_begin = now (); rs_end = -1.0 }
    in
    b.b_stack <- i :: b.b_stack;
    i
  end

let stop tok =
  if tok >= 0 then begin
    let b = Domain.DLS.get buffer_key in
    (* A [reset] between start and stop invalidates the token. *)
    if tok < b.b_len && List.mem tok b.b_stack then begin
      let t = now () in
      (* Pop to [tok], force-closing any child left open so the
         recorded tree stays well-formed even on sloppy call sites. *)
      let rec pop = function
        | [] -> []
        | i :: rest ->
          let r = b.b_spans.(i) in
          if r.rs_end < r.rs_begin then r.rs_end <- t;
          if i = tok then rest else pop rest
      in
      b.b_stack <- pop b.b_stack
    end
  end

let with_span ?detail name f =
  let tok = start ?detail name in
  Fun.protect ~finally:(fun () -> stop tok) f

(* Append detail to an open span discovered along the way (e.g. the
   executor annotating an operator span with the computed output shape).
   Same-domain only, like [stop]: the token indexes this domain's
   buffer. *)
let annotate tok detail =
  if tok >= 0 && detail <> "" then begin
    let b = Domain.DLS.get buffer_key in
    if tok < b.b_len then begin
      let r = b.b_spans.(tok) in
      r.rs_detail <- (if r.rs_detail = "" then detail else r.rs_detail ^ " " ^ detail)
    end
  end

(* ---------- counters ---------- *)

type counter = {
  c_name : string;
  c_val : int Atomic.t;
}

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let counters_mu = Mutex.create ()

let counter name =
  Mutex.lock counters_mu;
  let c =
    match Hashtbl.find_opt counters_tbl name with
    | Some c -> c
    | None ->
      let c = { c_name = name; c_val = Atomic.make 0 } in
      Hashtbl.add counters_tbl name c;
      c
  in
  Mutex.unlock counters_mu;
  c

let incr c = if Atomic.get enabled_flag then Atomic.incr c.c_val
let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_val n)
let value c = Atomic.get c.c_val

(* ---------- histograms ---------- *)

type hist_stats = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

(* Percentiles come from reservoir sampling (Vitter's Algorithm R): the
   first [reservoir_cap] observations are kept verbatim, after which the
   i-th observation replaces a uniformly random slot with probability
   cap/i, so the reservoir stays a uniform sample of the whole stream.
   Up to [reservoir_cap] observations the percentiles are exact
   (nearest-rank on the sorted buffer); beyond that they are unbiased
   estimates.  Randomness is a small deterministic per-histogram LCG —
   no dependence on the global [Random] state, and identical runs
   produce identical reservoirs. *)
let reservoir_cap = 512

type histogram = {
  hg_name : string;
  hg_mu : Mutex.t;
  mutable hg_count : int;
  mutable hg_sum : float;
  mutable hg_min : float;
  mutable hg_max : float;
  hg_reservoir : float array;  (* first [min count cap] slots are live *)
  mutable hg_rng : int;  (* LCG state *)
}

let hists_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16
let hists_mu = Mutex.create ()

let histogram name =
  Mutex.lock hists_mu;
  let h =
    match Hashtbl.find_opt hists_tbl name with
    | Some h -> h
    | None ->
      let h =
        { hg_name = name; hg_mu = Mutex.create (); hg_count = 0; hg_sum = 0.; hg_min = 0.; hg_max = 0.;
          hg_reservoir = Array.make reservoir_cap 0.0;
          hg_rng = Hashtbl.hash name lor 1
        }
      in
      Hashtbl.add hists_tbl name h;
      h
  in
  Mutex.unlock hists_mu;
  h

(* 48-bit LCG (the classic drand48 multiplier); callers hold [hg_mu]. *)
let lcg_next h bound =
  h.hg_rng <- (h.hg_rng * 25214903917 + 11) land 0xFFFFFFFFFFFF;
  (h.hg_rng lsr 16) mod bound

let observe h x =
  if Atomic.get enabled_flag then begin
    Mutex.lock h.hg_mu;
    if h.hg_count = 0 then begin
      h.hg_min <- x;
      h.hg_max <- x
    end
    else begin
      if x < h.hg_min then h.hg_min <- x;
      if x > h.hg_max then h.hg_max <- x
    end;
    h.hg_count <- h.hg_count + 1;
    h.hg_sum <- h.hg_sum +. x;
    (if h.hg_count <= reservoir_cap then h.hg_reservoir.(h.hg_count - 1) <- x
     else begin
       let j = lcg_next h h.hg_count in
       if j < reservoir_cap then h.hg_reservoir.(j) <- x
     end);
    Mutex.unlock h.hg_mu
  end

(* nearest-rank percentile on a sorted sample *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n /. 100.0)) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))
  end

let hist_stats h =
  Mutex.lock h.hg_mu;
  let live = Stdlib.min h.hg_count reservoir_cap in
  let sample = Array.sub h.hg_reservoir 0 live in
  let s =
    { h_count = h.hg_count; h_sum = h.hg_sum; h_min = h.hg_min; h_max = h.hg_max;
      h_p50 = 0.; h_p90 = 0.; h_p99 = 0. }
  in
  Mutex.unlock h.hg_mu;
  Array.sort compare sample;
  { s with
    h_p50 = percentile sample 50.0;
    h_p90 = percentile sample 90.0;
    h_p99 = percentile sample 99.0
  }

(* ---------- reset ---------- *)

let reset () =
  Mutex.lock registry_mu;
  (* Truncate in place: the owning domains' DLS slots still reference
     these buffers, so we must not drop them from under a live domain. *)
  List.iter
    (fun b ->
      b.b_len <- 0;
      b.b_stack <- [])
    !registry;
  Mutex.unlock registry_mu;
  Mutex.lock counters_mu;
  Hashtbl.iter (fun _ c -> Atomic.set c.c_val 0) counters_tbl;
  Mutex.unlock counters_mu;
  Mutex.lock hists_mu;
  Hashtbl.iter
    (fun _ h ->
      Mutex.lock h.hg_mu;
      h.hg_count <- 0;
      h.hg_sum <- 0.;
      h.hg_min <- 0.;
      h.hg_max <- 0.;
      Array.fill h.hg_reservoir 0 reservoir_cap 0.0;
      h.hg_rng <- Hashtbl.hash h.hg_name lor 1;
      Mutex.unlock h.hg_mu)
    hists_tbl;
  Mutex.unlock hists_mu

(* ---------- snapshots ---------- *)

type span_record = {
  sp_name : string;
  sp_detail : string;
  sp_domain : int;
  sp_id : int;
  sp_parent : int;
  sp_begin : float;
  sp_end : float;
}

let span_closed sp = sp.sp_end >= sp.sp_begin

let spans () =
  Mutex.lock registry_mu;
  let bufs = !registry in
  Mutex.unlock registry_mu;
  let out =
    List.concat_map
      (fun b ->
        List.init b.b_len (fun i ->
            let r = b.b_spans.(i) in
            {
              sp_name = r.rs_name;
              sp_detail = r.rs_detail;
              sp_domain = b.b_domain;
              sp_id = i;
              sp_parent = r.rs_parent;
              sp_begin = r.rs_begin;
              sp_end = r.rs_end;
            }))
      bufs
  in
  List.sort (fun a b -> compare (a.sp_domain, a.sp_id) (b.sp_domain, b.sp_id)) out

let counters () =
  Mutex.lock counters_mu;
  let out = Hashtbl.fold (fun _ c acc -> (c.c_name, Atomic.get c.c_val) :: acc) counters_tbl [] in
  Mutex.unlock counters_mu;
  List.sort compare out

let histograms () =
  Mutex.lock hists_mu;
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) hists_tbl [] in
  Mutex.unlock hists_mu;
  List.sort compare (List.map (fun h -> (h.hg_name, hist_stats h)) hs)

(* ---------- aggregation & sinks ---------- *)

type agg = {
  agg_name : string;
  agg_count : int;
  agg_total : float;
  agg_min : float;
  agg_max : float;
}

let aggregate_spans sps =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      let cur =
        match Hashtbl.find_opt tbl sp.sp_name with
        | Some a -> a
        | None -> { agg_name = sp.sp_name; agg_count = 0; agg_total = 0.; agg_min = infinity; agg_max = 0. }
      in
      let a =
        if span_closed sp then begin
          let d = sp.sp_end -. sp.sp_begin in
          {
            cur with
            agg_count = cur.agg_count + 1;
            agg_total = cur.agg_total +. d;
            agg_min = Float.min cur.agg_min d;
            agg_max = Float.max cur.agg_max d;
          }
        end
        else { cur with agg_count = cur.agg_count + 1 }
      in
      Hashtbl.replace tbl sp.sp_name a)
    sps;
  let out = Hashtbl.fold (fun _ a acc -> a :: acc) tbl [] in
  let out = List.map (fun a -> if a.agg_min = infinity then { a with agg_min = 0. } else a) out in
  List.sort (fun a b -> compare a.agg_name b.agg_name) out

let pp_summary_aggs ppf aggs =
  Format.fprintf ppf "%-34s %7s %12s %12s %12s@."
    "span" "count" "total ms" "min ms" "max ms";
  List.iter
    (fun a ->
      Format.fprintf ppf "%-34s %7d %12.3f %12.3f %12.3f@."
        a.agg_name a.agg_count (a.agg_total *. 1e3) (a.agg_min *. 1e3) (a.agg_max *. 1e3))
    aggs

let pp_counters ppf cs =
  Format.fprintf ppf "%-34s %12s@." "counter" "value";
  List.iter (fun (name, v) -> Format.fprintf ppf "%-34s %12d@." name v) cs

let pp_histograms ppf hs =
  Format.fprintf ppf "%-34s %7s %12s %12s %12s %12s %12s %12s@."
    "histogram" "count" "min" "mean" "p50" "p90" "p99" "max";
  List.iter
    (fun (name, s) ->
      let mean = if s.h_count = 0 then 0. else s.h_sum /. float_of_int s.h_count in
      Format.fprintf ppf "%-34s %7d %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f@."
        name s.h_count s.h_min mean s.h_p50 s.h_p90 s.h_p99 s.h_max)
    hs

let pp_summary ppf () =
  let aggs = aggregate_spans (spans ()) in
  if aggs <> [] then Format.fprintf ppf "-- spans --@.%a" pp_summary_aggs aggs;
  let cs = counters () in
  if cs <> [] then Format.fprintf ppf "-- counters --@.%a" pp_counters cs;
  let hs = List.filter (fun (_, s) -> s.h_count > 0) (histograms ()) in
  if hs <> [] then Format.fprintf ppf "-- histograms --@.%a" pp_histograms hs

let chrome_trace () =
  let sps = spans () in
  let t0 = List.fold_left (fun acc sp -> Float.min acc sp.sp_begin) infinity sps in
  let t0 = if t0 = infinity then 0. else t0 in
  let events =
    List.filter_map
      (fun sp ->
        if not (span_closed sp) then None
        else
          let base =
            [
              ("name", Json.Str sp.sp_name);
              ("cat", Json.Str "unit");
              ("ph", Json.Str "X");
              ("pid", Json.Num 1.);
              ("tid", Json.Num (float_of_int sp.sp_domain));
              ("ts", Json.Num ((sp.sp_begin -. t0) *. 1e6));
              ("dur", Json.Num ((sp.sp_end -. sp.sp_begin) *. 1e6));
            ]
          in
          let args =
            if sp.sp_detail = "" then []
            else [ ("args", Json.Obj [ ("detail", Json.Str sp.sp_detail) ]) ]
          in
          Some (Json.Obj (base @ args)))
      sps
  in
  let counters_json = List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) (counters ()) in
  let hists_json =
    List.map
      (fun (k, s) ->
        ( k,
          Json.Obj
            [
              ("count", Json.Num (float_of_int s.h_count));
              ("sum", Json.Num s.h_sum);
              ("min", Json.Num s.h_min);
              ("max", Json.Num s.h_max);
              ("p50", Json.Num s.h_p50);
              ("p90", Json.Num s.h_p90);
              ("p99", Json.Num s.h_p99);
            ] ))
      (histograms ())
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr events);
      ("displayTimeUnit", Json.Str "ms");
      ("counters", Json.Obj counters_json);
      ("histograms", Json.Obj hists_json);
    ]

let stats_json () =
  let counters_json =
    List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) (counters ())
  in
  let hists_json =
    List.map
      (fun (k, s) ->
        ( k,
          Json.Obj
            [
              ("count", Json.Num (float_of_int s.h_count));
              ("sum", Json.Num s.h_sum);
              ("min", Json.Num s.h_min);
              ("max", Json.Num s.h_max);
              ("p50", Json.Num s.h_p50);
              ("p90", Json.Num s.h_p90);
              ("p99", Json.Num s.h_p99);
            ] ))
      (List.filter (fun (_, s) -> s.h_count > 0) (histograms ()))
  in
  let spans_json =
    List.map
      (fun a ->
        Json.Obj
          [
            ("name", Json.Str a.agg_name);
            ("count", Json.Num (float_of_int a.agg_count));
            ("total_s", Json.Num a.agg_total);
          ])
      (aggregate_spans (spans ()))
  in
  Json.Obj
    [
      ("enabled", Json.Bool (enabled ()));
      ("counters", Json.Obj counters_json);
      ("histograms", Json.Obj hists_json);
      ("spans", Json.Arr spans_json);
    ]

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (chrome_trace ())))

let tensorize_stages =
  [
    "tensorize.inspect";
    "tensorize.reorganize";
    "tensorize.tune";
    "tensorize.lower_replace";
    "tensorize.analyze";
  ]
