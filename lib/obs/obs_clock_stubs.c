/* Monotonic clock for span timing.  OCaml 5.1's Unix library exposes no
   clock_gettime, so this one-function stub bridges to the POSIX
   monotonic clock; obs.ml falls back to Unix.gettimeofday when the call
   is unavailable or fails (signalled by a negative return).  Monotonic
   time means an NTP step can never produce a negative-duration span. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)

CAMLprim value unit_obs_monotonic_s(value unit)
{
  return caml_copy_double(-1.0);
}

#else

#include <time.h>

CAMLprim value unit_obs_monotonic_s(value unit)
{
#ifdef CLOCK_MONOTONIC
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
  return caml_copy_double(-1.0);
}

#endif
