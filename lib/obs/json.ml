(* A minimal JSON value with a printer and a strict recursive-descent
   parser.  The observability sinks emit through [to_string]; [parse]
   exists so `unitc trace-lint` (and the @obs-smoke alias) can verify that
   an emitted trace file is genuine JSON without any external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

(* OCaml strings are byte strings, so [Str] may carry arbitrary bytes
   (file paths, user-provided op names).  The emitted document must still
   be valid UTF-8 JSON, so bytes >= 0x80 are only passed through as part
   of a well-formed UTF-8 sequence (with the RFC 3629 overlong/surrogate/
   range exclusions); anything else becomes U+FFFD. *)
let replacement = "\xef\xbf\xbd"

let escape_string b s =
  let n = String.length s in
  let byte i = Char.code s.[i] in
  let cont i = i < n && byte i land 0xc0 = 0x80 in
  Buffer.add_char b '"';
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    (match c with
     | '"' ->
       Buffer.add_string b "\\\"";
       incr i
     | '\\' ->
       Buffer.add_string b "\\\\";
       incr i
     | '\n' ->
       Buffer.add_string b "\\n";
       incr i
     | '\r' ->
       Buffer.add_string b "\\r";
       incr i
     | '\t' ->
       Buffer.add_string b "\\t";
       incr i
     | c when Char.code c < 0x20 ->
       Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c));
       incr i
     | c when Char.code c < 0x80 ->
       Buffer.add_char b c;
       incr i
     | _ ->
       let c0 = byte !i in
       let len =
         if c0 >= 0xc2 && c0 <= 0xdf && cont (!i + 1) then 2
         else if
           c0 >= 0xe0 && c0 <= 0xef
           && cont (!i + 1)
           && cont (!i + 2)
           (* E0: exclude overlong; ED: exclude surrogates *)
           && (c0 <> 0xe0 || byte (!i + 1) >= 0xa0)
           && (c0 <> 0xed || byte (!i + 1) < 0xa0)
         then 3
         else if
           c0 >= 0xf0 && c0 <= 0xf4
           && cont (!i + 1)
           && cont (!i + 2)
           && cont (!i + 3)
           (* F0: exclude overlong; F4: stay below U+110000 *)
           && (c0 <> 0xf0 || byte (!i + 1) >= 0x90)
           && (c0 <> 0xf4 || byte (!i + 1) < 0x90)
         then 4
         else 0
       in
       if len = 0 then begin
         Buffer.add_string b replacement;
         incr i
       end
       else begin
         Buffer.add_substring b s !i len;
         i := !i + len
       end)
  done;
  Buffer.add_char b '"'

let add_num b x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else if Float.is_nan x || Float.abs x = Float.infinity then
    (* JSON has no NaN/inf; clamp to null like most emitters *)
    Buffer.add_string b "null"
  else Buffer.add_string b (Printf.sprintf "%.17g" x)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num x -> add_num b x
  | Str s -> escape_string b s
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        add b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        add b v)
      kvs;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 1024 in
  add b j;
  Buffer.contents b

(* ---------- parsing ---------- *)

exception Parse_error of string

type state = {
  src : string;
  mutable pos : int;
}

let fail st fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" st.pos m))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | Some d -> fail st "expected %c, found %c" c d
  | None -> fail st "expected %c, found end of input" c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st "invalid literal"

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let code = ref 0 in
  for _ = 1 to 4 do
    let c = st.src.[st.pos] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "invalid \\u escape"
    in
    code := (!code * 16) + d;
    st.pos <- st.pos + 1
  done;
  !code

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
  end

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
       | Some '"' -> Buffer.add_char b '"'; st.pos <- st.pos + 1
       | Some '\\' -> Buffer.add_char b '\\'; st.pos <- st.pos + 1
       | Some '/' -> Buffer.add_char b '/'; st.pos <- st.pos + 1
       | Some 'n' -> Buffer.add_char b '\n'; st.pos <- st.pos + 1
       | Some 'r' -> Buffer.add_char b '\r'; st.pos <- st.pos + 1
       | Some 't' -> Buffer.add_char b '\t'; st.pos <- st.pos + 1
       | Some 'b' -> Buffer.add_char b '\b'; st.pos <- st.pos + 1
       | Some 'f' -> Buffer.add_char b '\012'; st.pos <- st.pos + 1
       | Some 'u' ->
         st.pos <- st.pos + 1;
         add_utf8 b (parse_hex4 st)
       | _ -> fail st "invalid escape");
      go ()
    | Some c ->
      Buffer.add_char b c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some x -> Num x
  | None -> fail st "invalid number %s" s

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected , or } in object"
      in
      Obj (members [])
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> fail st "expected , or ] in array"
      in
      Arr (elements [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error (Printf.sprintf "trailing garbage at %d" st.pos)
    else Ok v
  | exception Parse_error m -> Error m

(* ---------- accessors ---------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_num = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x && Float.abs x <= 2. ** 52. -> Some (int_of_float x)
  | _ -> None
