(** Prometheus text exposition (format version 0.0.4) over the whole
    {!Obs} surface: every counter as a [counter], every registered
    gauge as a [gauge], every histogram as a [histogram] with
    cumulative power-of-two [le] buckets plus [_sum]/[_count].

    The numbers come straight from the live atomics/bucket counts, so a
    scrape is truthful whether or not span tracing is enabled —
    counters interned with [~always:true] (the daemon's [serve.*]
    family) never stop counting.  Metric names are mangled to the legal
    Prometheus alphabet and prefixed [unit_]
    ([serve.latency_us] → [unit_serve_latency_us]). *)

val content_type : string
(** ["text/plain; version=0.0.4"] — what an HTTP scrape would label the
    body with; carried alongside the body in the daemon's [metrics]
    response. *)

val render : unit -> string
(** One scrape of everything currently registered. *)

val validate : string -> (unit, string) result
(** Check a scrape for exposition-format validity: well-formed names
    and values, every sample TYPE-declared, histogram buckets
    cumulative with a [+Inf] bucket equal to [_count].  Used by the
    [@metrics-smoke] alias and the test suite; strict enough to catch a
    renderer regression, not a full spec parser. *)

val mangle : string -> string
(** The Obs-name → Prometheus-name mapping (exposed for tests and for
    smokes grepping a scrape for a specific family). *)
