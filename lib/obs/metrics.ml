(* Prometheus text exposition (format version 0.0.4) over the Obs
   surface.  See metrics.mli. *)

let content_type = "text/plain; version=0.0.4"

(* Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; Obs names use
   dots ("serve.latency_us").  Map every illegal character to '_' and
   prefix "unit_" (which also guarantees a legal first character). *)
let mangle name =
  let b = Bytes.of_string name in
  for i = 0 to Bytes.length b - 1 do
    match Bytes.get b i with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
    | _ -> Bytes.set b i '_'
  done;
  "unit_" ^ Bytes.to_string b

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let fmt_bound b = if b = infinity then "+Inf" else Printf.sprintf "%.0f" b

let render_counter buf name v =
  let n = mangle name in
  Printf.bprintf buf "# TYPE %s counter\n%s %d\n" n n v

let render_gauge buf name v =
  let n = mangle name in
  Printf.bprintf buf "# TYPE %s gauge\n%s %s\n" n n (fmt_value v)

let render_histogram buf name h =
  let n = mangle name in
  let buckets = Obs.hist_buckets h in
  let stats = Obs.hist_stats h in
  Printf.bprintf buf "# TYPE %s histogram\n" n;
  let cumulative = ref 0 in
  Array.iteri
    (fun i c ->
      cumulative := !cumulative + c;
      Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" n
        (fmt_bound Obs.bucket_bounds.(i))
        !cumulative)
    buckets;
  Printf.bprintf buf "%s_sum %s\n" n (fmt_value stats.Obs.h_sum);
  Printf.bprintf buf "%s_count %d\n" n stats.Obs.h_count

let render () =
  let buf = Buffer.create 4096 in
  List.iter (fun (name, v) -> render_counter buf name v) (Obs.counters ());
  List.iter (fun (name, v) -> render_gauge buf name v) (Obs.gauges ());
  List.iter (fun (name, h) -> render_histogram buf name h) (Obs.histogram_handles ());
  Buffer.contents buf

(* ---------- validation ---------- *)

(* A strict-enough checker for what we emit (and for smokes scraping a
   live daemon): every line is a comment or a sample, every sample's
   family was TYPE-declared first, names and values are well-formed,
   and histogram families have non-decreasing cumulative buckets whose
   +Inf bucket equals their _count. *)

let is_name_char first c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | '0' .. '9' -> not first
  | _ -> false

let valid_name s =
  s <> ""
  && is_name_char true s.[0]
  && String.for_all (fun c -> is_name_char false c) s

let valid_value s =
  match s with
  | "+Inf" | "-Inf" | "Inf" | "NaN" -> true
  | _ -> Option.is_some (float_of_string_opt s)

(* family of a sample name: strip the histogram/summary suffixes *)
let family name =
  let strip suffix =
    if String.length name > String.length suffix
       && String.ends_with ~suffix name
    then Some (String.sub name 0 (String.length name - String.length suffix))
    else None
  in
  match strip "_bucket" with
  | Some f -> f
  | None ->
    (match strip "_sum" with
     | Some f -> f
     | None -> (match strip "_count" with Some f -> f | None -> name))

type sample = { s_name : string; s_le : string option; s_value : string }

let parse_sample line =
  let name_end =
    let rec go i =
      if i >= String.length line then i
      else match line.[i] with '{' | ' ' -> i | _ -> go (i + 1)
    in
    go 0
  in
  let name = String.sub line 0 name_end in
  if not (valid_name name) then Error (Printf.sprintf "bad metric name in %S" line)
  else begin
    let rest = String.sub line name_end (String.length line - name_end) in
    let le, rest =
      if rest <> "" && rest.[0] = '{' then
        match String.index_opt rest '}' with
        | None -> (None, rest)
        | Some close ->
          let labels = String.sub rest 1 (close - 1) in
          let le =
            (* we only emit the le label; scrape it back out *)
            let prefix = "le=\"" in
            match
              if String.length labels >= String.length prefix
                 && String.sub labels 0 (String.length prefix) = prefix
              then String.index_from_opt labels (String.length prefix) '"'
              else None
            with
            | Some q ->
              Some (String.sub labels 4 (q - 4))
            | None -> None
          in
          (le, String.sub rest (close + 1) (String.length rest - close - 1))
      else (None, rest)
    in
    let value = String.trim rest in
    if not (valid_value value) then
      Error (Printf.sprintf "bad sample value in %S" line)
    else Ok { s_name = name; s_le = le; s_value = value }
  end

let validate text =
  let lines = String.split_on_char '\n' text in
  let types : (string, string) Hashtbl.t = Hashtbl.create 64 in
  (* per histogram family: last cumulative bucket value, +Inf value *)
  let hist_last : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let hist_inf : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let hist_count : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let err = ref None in
  let fail m = if !err = None then err := Some m in
  List.iter
    (fun line ->
      if !err = None && line <> "" then
        if line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: name :: [ ty ] ->
            if not (valid_name name) then
              fail (Printf.sprintf "bad name in TYPE line %S" line)
            else if
              not (List.mem ty [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
            then fail (Printf.sprintf "unknown type in %S" line)
            else if Hashtbl.mem types name then
              fail (Printf.sprintf "duplicate TYPE for %s" name)
            else Hashtbl.add types name ty
          | "#" :: "TYPE" :: _ -> fail (Printf.sprintf "malformed TYPE line %S" line)
          | _ -> () (* HELP / free comment *)
        end
        else
          match parse_sample line with
          | Error m -> fail m
          | Ok s ->
            let fam = family s.s_name in
            (match Hashtbl.find_opt types fam with
             | None ->
               (* exact-name declaration (counter/gauge) also counts *)
               if not (Hashtbl.mem types s.s_name) then
                 fail (Printf.sprintf "sample %s has no TYPE declaration" s.s_name)
             | Some "histogram" ->
               let v = float_of_string (if s.s_value = "+Inf" then "infinity" else s.s_value) in
               if String.ends_with ~suffix:"_bucket" s.s_name then begin
                 (match s.s_le with
                  | None -> fail (Printf.sprintf "bucket sample %s lacks le label" s.s_name)
                  | Some le ->
                    let prev =
                      Option.value ~default:0.0 (Hashtbl.find_opt hist_last fam)
                    in
                    if v < prev then
                      fail
                        (Printf.sprintf
                           "histogram %s bucket le=%s not cumulative (%g < %g)"
                           fam le v prev);
                    Hashtbl.replace hist_last fam v;
                    if le = "+Inf" then Hashtbl.replace hist_inf fam v)
               end
               else if String.ends_with ~suffix:"_count" s.s_name then
                 Hashtbl.replace hist_count fam v
             | Some _ -> ()))
    lines;
  (match !err with
   | Some _ -> ()
   | None ->
     Hashtbl.iter
       (fun fam count ->
         match Hashtbl.find_opt hist_inf fam with
         | None -> fail (Printf.sprintf "histogram %s has no +Inf bucket" fam)
         | Some inf ->
           if inf <> count then
             fail
               (Printf.sprintf "histogram %s +Inf bucket %g != count %g" fam inf
                  count))
       hist_count);
  match !err with None -> Ok () | Some m -> Error m
