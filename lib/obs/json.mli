(** Minimal JSON: value type, escaped printer, strict parser.
    Exists so the observability sinks and [unitc trace-lint] need no
    external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** The output is always valid UTF-8 JSON even for arbitrary byte
    content in [Str]: control characters are [\u]-escaped, well-formed
    UTF-8 sequences pass through, and any invalid byte (stray
    continuation, overlong or surrogate encoding, > U+10FFFF) is
    replaced with U+FFFD. *)

val parse : string -> (t, string) result
(** Strict: rejects trailing garbage; [\u] escapes are decoded to
    UTF-8 (surrogate pairs unsupported — the emitter never produces
    them). *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_str : t -> string option
val to_num : t -> float option

val to_int : t -> int option
(** [Some n] only for numbers that are exact integers (within the f64
    53-bit window); the tuning store's reader uses it to reject
    fractional budgets as corrupt. *)
