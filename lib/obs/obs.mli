(** Zero-dependency observability: hierarchical trace spans, named
    counters and histograms, with human-table / JSON / Chrome
    [trace_event] sinks.

    Everything is gated on a single atomic [enabled] flag.  When tracing
    is disabled every entry point is a no-op: [start] returns
    [null_span] without touching any buffer, [incr]/[observe] return
    immediately, and instrumented call sites are expected to guard any
    string construction behind [enabled ()].  Span recording is
    domain-safe: each domain appends to its own buffer (via
    [Domain.DLS]), so [Parallel_oracle] workers can record without
    contention; only buffer registration takes a lock.

    Timing uses the POSIX monotonic clock (via a one-function C stub —
    OCaml's [Unix] exposes no [clock_gettime]), falling back to
    [Unix.gettimeofday] where monotonic time is unavailable, so a
    wall-clock step can never produce a negative-duration span.  Spans
    are intervals in seconds on that clock. *)

(** {1 Global switch} *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans, zero all counters/histograms (reservoirs
    and bucket counts alike) and clear the per-trace store.  Registered
    counter/histogram handles and gauge callbacks stay valid. *)

val monotonic_available : bool
(** Whether span timing runs on the monotonic clock ([true] everywhere
    the C stub's [clock_gettime(CLOCK_MONOTONIC)] works). *)

val now : unit -> float
(** The span clock: monotonic seconds when available, else
    [Unix.gettimeofday].  Exposed so latency measurements elsewhere
    (e.g. the daemon's flight recorder) share the span timebase. *)

(** {1 Trace context}

    A request-scoped trace id carried in [Domain.DLS].  While a context
    is set on a domain, every span opened there is tagged with the id
    and copied into a bounded per-trace store when it closes, every
    counter increment is additionally attributed to the trace (always —
    attribution is gated on the context, not on [enabled], so
    per-request accounting stays truthful with tracing off), and
    {!trace_diag} tags diagnostics.  The store retains the most recent
    [trace_cap] (default 256) traces, FIFO-evicted. *)

val set_trace_id : string option -> unit
(** Set/clear this domain's trace context. *)

val current_trace_id : unit -> string option

val with_trace_id : string option -> (unit -> 'a) -> 'a
(** Run with the context set, restoring the previous context after —
    the daemon worker wraps each request handler call in this. *)

val trace_begin : string -> unit
(** Register a trace id in the bounded store (idempotent).  Activity
    attributed to an id never begun — or already evicted — is silently
    dropped, so stray contexts cannot grow the store. *)

val trace_known : string -> bool
val set_trace_cap : int -> unit
val trace_ids : unit -> string list
(** Retained trace ids, oldest first. *)

val trace_counters : string -> (string * int) list option
(** Counter deltas attributed to the trace (name-sorted), [None] for an
    unknown id. *)

val trace_counter_value : string -> string -> int
(** [trace_counter_value id name] — 0 when absent or unknown. *)

val trace_diag : string -> unit
(** Tag a diagnostic message onto the current trace context (no-op
    without one). *)

val trace_diags : string -> string list option
(** Diagnostics tagged onto the trace, oldest first. *)

(** {1 Spans} *)

type span = int
(** A token for an open span, private to the domain that started it.
    [null_span] is returned when tracing is disabled. *)

val null_span : span

val start : ?detail:string -> string -> span
(** [start name] opens a span named [name] in the current domain,
    nested under the innermost open span of this domain.  O(1), no
    allocation beyond the record itself; returns [null_span] (and
    records nothing) when disabled. *)

val stop : span -> unit
(** Close a span returned by [start].  Must run in the same domain.
    [stop null_span] is a no-op. *)

val with_span : ?detail:string -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span, closing it even if
    [f] raises.  Convenience wrapper — hot paths that must not allocate
    a closure should use [start]/[stop] directly. *)

val annotate : span -> string -> unit
(** Append detail to a span discovered after it was opened (e.g. a
    computed output shape).  Joined to any existing detail with a space.
    Must run in the starting domain; no-op on [null_span] or [""]. *)

(** {1 Counters} *)

type counter

val counter : ?always:bool -> string -> counter
(** Intern a counter by name (idempotent: same name, same handle; the
    [always] flag is fixed at first intern).  Register handles once at
    module init, not on hot paths.  [~always:true] makes the counter
    unconditional — it counts with tracing disabled, for numbers that
    must stay truthful in a daemon's /stats and metrics exposition. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** No-ops while disabled unless the counter was interned with
    [~always:true].  Per-trace attribution (see {!set_trace_id}) happens
    regardless of the [enabled] gate whenever a context is set. *)

val value : counter -> int

(** {1 Histograms} *)

type histogram

type hist_stats = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

val histogram : ?always:bool -> string -> histogram
(** Intern a histogram by name (idempotent; the [always] flag is fixed
    at first intern — [~always:true] records with tracing disabled). *)

val observe : histogram -> float -> unit
(** No-op while disabled unless interned with [~always:true]. *)

val hist_stats : histogram -> hist_stats
(** [h_p50]/[h_p90]/[h_p99] are nearest-rank percentiles over a
    512-slot reservoir sample (Vitter's Algorithm R, deterministic
    per-histogram LCG): exact up to 512 observations, unbiased
    estimates beyond.  For bounds that are exact over the whole stream
    use {!bucket_quantile}. *)

(** {2 Fixed log-spaced buckets}

    Every histogram also counts observations into fixed power-of-two
    buckets (upper bounds [2^0 .. 2^41], then [+Inf]; values [<= 1]
    including zero/negatives land in the first).  Unlike the reservoir,
    bucket counts cover every observation ever made, so bucket-derived
    quantiles are exact upper bounds at one-power-of-two resolution —
    this is what the Prometheus exposition ({!Metrics}) renders. *)

val n_buckets : int
val bucket_bounds : float array
(** Length {!n_buckets}; last element is [infinity]. *)

val bucket_index : float -> int
(** The bucket an observation lands in. *)

val hist_buckets : histogram -> int array
(** Per-bucket (non-cumulative) counts, length {!n_buckets}. *)

val bucket_quantile : histogram -> float -> float
(** [bucket_quantile h 99.0] — the upper bucket bound of the
    nearest-rank 99th percentile of the whole stream; exact-by-bucket,
    never sampled.  [0.0] on an empty histogram. *)

(** {1 Gauges}

    Named callback gauges for live values (queue depth, cache
    occupancy) sampled at snapshot time.  Registration replaces by
    name; a callback that raises is skipped in {!gauges}. *)

val register_gauge : string -> (unit -> float) -> unit
val gauges : unit -> (string * float) list

(** {1 Snapshots} *)

type span_record = {
  sp_name : string;
  sp_detail : string;  (** [""] when none *)
  sp_domain : int;  (** id of the recording domain *)
  sp_id : int;  (** unique within [sp_domain] *)
  sp_parent : int;  (** [sp_id] of the enclosing span, [-1] for roots *)
  sp_trace : string;  (** request trace id, [""] when not request-scoped *)
  sp_begin : float;  (** seconds on the span clock ({!now}) *)
  sp_end : float;  (** [< sp_begin] iff the span was never closed *)
}

val trace_spans : string -> span_record list option
(** Closed spans attributed to the trace, sorted by (domain, id);
    [None] for an unknown id. *)

val span_closed : span_record -> bool

val spans : unit -> span_record list
(** All recorded spans, sorted by (domain, id) — i.e. per-domain
    program order. *)

val counters : unit -> (string * int) list
(** Name-sorted; zero-valued counters are included once registered. *)

val histograms : unit -> (string * hist_stats) list
(** Name-sorted; empty histograms are included once registered. *)

val histogram_handles : unit -> (string * histogram) list
(** Name-sorted handles to every registered histogram — the metrics
    renderer walks these for bucket counts. *)

(** {1 Aggregation and sinks} *)

type agg = {
  agg_name : string;
  agg_count : int;
  agg_total : float;  (** summed wall seconds *)
  agg_min : float;
  agg_max : float;
}

val aggregate_spans : span_record list -> agg list
(** Group spans by name; name-sorted.  Unclosed spans count toward
    [agg_count] but contribute no time. *)

val pp_summary_aggs : Format.formatter -> agg list -> unit
(** The fixed-width span table — pure, for golden tests. *)

val pp_counters : Format.formatter -> (string * int) list -> unit
(** The fixed-width counter table — pure, for golden tests. *)

val pp_histograms : Format.formatter -> (string * hist_stats) list -> unit

val pp_summary : Format.formatter -> unit -> unit
(** Live sink: spans aggregated + counters + histograms, via the pure
    printers above. *)

val chrome_trace : unit -> Json.t
(** Chrome [trace_event] JSON: an object with a ["traceEvents"] array of
    phase-["X"] complete events (one per closed span; [tid] = domain,
    microsecond timestamps relative to the earliest span; request-scoped
    spans carry ["args"]["trace_id"]), plus ["counters"] and
    ["histograms"] objects. *)

val trace_chrome : string -> Json.t option
(** The finished span tree of one request-scoped trace as a Chrome
    trace document — only the spans, counter deltas and diagnostics
    attributed to that id, plus a top-level ["trace_id"].  [None] for an
    id never begun or already evicted.  The payload of the daemon's
    [trace] request. *)

val write_chrome_trace : string -> unit
(** [write_chrome_trace path] writes [chrome_trace ()] to [path]. *)

val stats_json : unit -> Json.t
(** One JSON snapshot of the whole Obs surface — counters, non-empty
    histograms (with p50/p90/p99) and span aggregates — the payload of
    the daemon's [/stats] request.  Reflects whatever has been recorded;
    with tracing disabled the numbers are simply zero/empty. *)

(** {1 Span taxonomy} *)

val tensorize_stages : string list
(** The five pipeline stage span names, in pipeline order:
    [tensorize.inspect], [tensorize.reorganize], [tensorize.tune],
    [tensorize.lower_replace], [tensorize.analyze].  Used by
    [unitc trace-lint] and the [@obs-smoke] alias. *)
