(** Zero-dependency observability: hierarchical trace spans, named
    counters and histograms, with human-table / JSON / Chrome
    [trace_event] sinks.

    Everything is gated on a single atomic [enabled] flag.  When tracing
    is disabled every entry point is a no-op: [start] returns
    [null_span] without touching any buffer, [incr]/[observe] return
    immediately, and instrumented call sites are expected to guard any
    string construction behind [enabled ()].  Span recording is
    domain-safe: each domain appends to its own buffer (via
    [Domain.DLS]), so [Parallel_oracle] workers can record without
    contention; only buffer registration takes a lock.

    Timing uses [Unix.gettimeofday] — the monotonic-clock stand-in
    available without extra packages.  Spans are wall-clock intervals in
    seconds. *)

(** {1 Global switch} *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans and zero all counters/histograms.
    Registered counter/histogram handles stay valid. *)

(** {1 Spans} *)

type span = int
(** A token for an open span, private to the domain that started it.
    [null_span] is returned when tracing is disabled. *)

val null_span : span

val start : ?detail:string -> string -> span
(** [start name] opens a span named [name] in the current domain,
    nested under the innermost open span of this domain.  O(1), no
    allocation beyond the record itself; returns [null_span] (and
    records nothing) when disabled. *)

val stop : span -> unit
(** Close a span returned by [start].  Must run in the same domain.
    [stop null_span] is a no-op. *)

val with_span : ?detail:string -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span, closing it even if
    [f] raises.  Convenience wrapper — hot paths that must not allocate
    a closure should use [start]/[stop] directly. *)

val annotate : span -> string -> unit
(** Append detail to a span discovered after it was opened (e.g. a
    computed output shape).  Joined to any existing detail with a space.
    Must run in the starting domain; no-op on [null_span] or [""]. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Intern a counter by name (idempotent: same name, same handle).
    Register handles once at module init, not on hot paths. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Both are no-ops while disabled. *)

val value : counter -> int

(** {1 Histograms} *)

type histogram

type hist_stats = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

val histogram : string -> histogram
(** Intern a histogram by name (idempotent). *)

val observe : histogram -> float -> unit
(** No-op while disabled. *)

val hist_stats : histogram -> hist_stats
(** [h_p50]/[h_p90]/[h_p99] are nearest-rank percentiles over a
    512-slot reservoir sample (Vitter's Algorithm R, deterministic
    per-histogram LCG): exact up to 512 observations, unbiased
    estimates beyond. *)

(** {1 Snapshots} *)

type span_record = {
  sp_name : string;
  sp_detail : string;  (** [""] when none *)
  sp_domain : int;  (** id of the recording domain *)
  sp_id : int;  (** unique within [sp_domain] *)
  sp_parent : int;  (** [sp_id] of the enclosing span, [-1] for roots *)
  sp_begin : float;  (** seconds, [Unix.gettimeofday] epoch *)
  sp_end : float;  (** [< sp_begin] iff the span was never closed *)
}

val span_closed : span_record -> bool

val spans : unit -> span_record list
(** All recorded spans, sorted by (domain, id) — i.e. per-domain
    program order. *)

val counters : unit -> (string * int) list
(** Name-sorted; zero-valued counters are included once registered. *)

val histograms : unit -> (string * hist_stats) list
(** Name-sorted; empty histograms are included once registered. *)

(** {1 Aggregation and sinks} *)

type agg = {
  agg_name : string;
  agg_count : int;
  agg_total : float;  (** summed wall seconds *)
  agg_min : float;
  agg_max : float;
}

val aggregate_spans : span_record list -> agg list
(** Group spans by name; name-sorted.  Unclosed spans count toward
    [agg_count] but contribute no time. *)

val pp_summary_aggs : Format.formatter -> agg list -> unit
(** The fixed-width span table — pure, for golden tests. *)

val pp_counters : Format.formatter -> (string * int) list -> unit
(** The fixed-width counter table — pure, for golden tests. *)

val pp_histograms : Format.formatter -> (string * hist_stats) list -> unit

val pp_summary : Format.formatter -> unit -> unit
(** Live sink: spans aggregated + counters + histograms, via the pure
    printers above. *)

val chrome_trace : unit -> Json.t
(** Chrome [trace_event] JSON: an object with a ["traceEvents"] array of
    phase-["X"] complete events (one per closed span; [tid] = domain,
    microsecond timestamps relative to the earliest span), plus
    ["counters"] and ["histograms"] objects. *)

val write_chrome_trace : string -> unit
(** [write_chrome_trace path] writes [chrome_trace ()] to [path]. *)

val stats_json : unit -> Json.t
(** One JSON snapshot of the whole Obs surface — counters, non-empty
    histograms (with p50/p90/p99) and span aggregates — the payload of
    the daemon's [/stats] request.  Reflects whatever has been recorded;
    with tracing disabled the numbers are simply zero/empty. *)

(** {1 Span taxonomy} *)

val tensorize_stages : string list
(** The five pipeline stage span names, in pipeline order:
    [tensorize.inspect], [tensorize.reorganize], [tensorize.tune],
    [tensorize.lower_replace], [tensorize.analyze].  Used by
    [unitc trace-lint] and the [@obs-smoke] alias. *)
