open Unit_tir

(* Per-kernel memory footprint, bounded statically.

   Three quantities per lowered kernel:
   - [fp_alloc_bytes]: peak scratch held by nested [Alloc]s (sizes are
     static in [Buffer.size], peaks follow the block structure);
   - [fp_tile_window_bytes]: the widest single-issue tile working set of
     any [Intrin_call] — output plus input windows, each spanned by the
     tile strides times the instruction's axis extents;
   - [fp_touched]: for every non-scratch buffer, the exact byte range
     the kernel addresses, from [Linear.bounds] over each access index
     under the loop/let environment (falling back to the whole buffer
     when an index is not linear). *)

type report = {
  fp_alloc_bytes : int;
  fp_tile_window_bytes : int;
  fp_touched : (string * int) list;  (* buffer name -> addressed bytes *)
  fp_total_bytes : int;
}

let default_intrin _ = None

let tile_span ~axes (tile : Stmt.tile) =
  List.fold_left
    (fun (lo, hi) (axis, stride) ->
      let extent = match List.assoc_opt axis axes with Some e -> e | None -> 1 in
      let step = stride * (extent - 1) in
      (lo + Stdlib.min 0 step, hi + Stdlib.max 0 step))
    (0, 0) tile.Stmt.tile_strides

let of_stmt ?(intrin = default_intrin) body =
  (* hull of addressed element ranges per buffer; [None] = unanalyzable
     index seen, charge the whole buffer *)
  let touched : (string, (Buffer.t * (int * int) option)) Hashtbl.t =
    Hashtbl.create 16
  in
  let scratch : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let widest_tile = ref 0 in
  let touch buf range =
    if not (Hashtbl.mem scratch buf.Buffer.name) then
      let merged =
        match Hashtbl.find_opt touched buf.Buffer.name, range with
        | None, r -> r
        | Some (_, None), _ | Some _, None -> None
        | Some (_, Some (alo, ahi)), Some (blo, bhi) ->
          Some (Stdlib.min alo blo, Stdlib.max ahi bhi)
      in
      Hashtbl.replace touched buf.Buffer.name (buf, merged)
  in
  let bounds env e = Linear.bounds ~env e in
  let touch_loads env e =
    List.iter (fun (b, ix) -> touch b (bounds env ix)) (Texpr.loads_of e)
  in
  (* environment: loop vars get [0, extent-1]; lets get their linear
     bounds when they have any *)
  let rec walk env alloc_depth (s : Stmt.t) =
    let lookup v =
      List.find_map (fun (w, r) -> if Var.equal v w then Some r else None) env
    in
    match s with
    | Stmt.Nop -> alloc_depth
    | Stmt.Seq stmts ->
      List.fold_left (fun acc st -> Stdlib.max acc (walk env alloc_depth st)) alloc_depth stmts
    | Stmt.Store (buf, ix, v) ->
      touch buf (bounds lookup ix);
      touch_loads lookup ix;
      touch_loads lookup v;
      alloc_depth
    | Stmt.For { var; extent; body; _ } ->
      walk ((var, (0, Stdlib.max 0 (extent - 1))) :: env) alloc_depth body
    | Stmt.If { cond; then_; else_; _ } ->
      touch_loads lookup cond;
      let a = walk env alloc_depth then_ in
      let b =
        match else_ with Some e -> walk env alloc_depth e | None -> alloc_depth
      in
      Stdlib.max a b
    | Stmt.Let (v, e, body) ->
      touch_loads lookup e;
      let env' =
        match bounds lookup e with Some r -> (v, r) :: env | None -> env
      in
      walk env' alloc_depth body
    | Stmt.Alloc (b, body) ->
      Hashtbl.replace scratch b.Buffer.name ();
      walk env (alloc_depth + Buffer.bytes b) body
    | Stmt.Intrin_call { intrin = name; output; inputs } ->
      let axes =
        match intrin name with
        | Some m -> m.Analysis.im_spatial @ m.Analysis.im_reduce
        | None -> []
      in
      let window (tile : Stmt.tile) =
        let slo, shi = tile_span ~axes tile in
        let elems = shi - slo + 1 in
        let bytes = elems * Unit_dtype.Dtype.bytes tile.Stmt.tile_buf.Buffer.dtype in
        (* the buffer range this tile addresses across the whole nest:
           base interval plus the per-issue span *)
        let range =
          Option.map
            (fun (blo, bhi) -> (blo + slo, bhi + shi))
            (bounds lookup tile.Stmt.tile_base)
        in
        touch tile.Stmt.tile_buf range;
        bytes
      in
      let total =
        window output + List.fold_left (fun acc (_, tl) -> acc + window tl) 0 inputs
      in
      widest_tile := Stdlib.max !widest_tile total;
      alloc_depth
  in
  let alloc_peak = walk [] 0 body in
  let touched_list =
    Hashtbl.fold
      (fun name (buf, range) acc ->
        let elems =
          match range with
          | Some (lo, hi) ->
            let lo = Stdlib.max 0 lo and hi = Stdlib.min (buf.Buffer.size - 1) hi in
            Stdlib.max 0 (hi - lo + 1)
          | None -> buf.Buffer.size
        in
        (name, elems * Unit_dtype.Dtype.bytes buf.Buffer.dtype) :: acc)
      touched []
    |> List.sort compare
  in
  { fp_alloc_bytes = alloc_peak;
    fp_tile_window_bytes = !widest_tile;
    fp_touched = touched_list;
    fp_total_bytes =
      alloc_peak + List.fold_left (fun acc (_, b) -> acc + b) 0 touched_list
  }

let of_func ?intrin (func : Lower.func) = of_stmt ?intrin func.Lower.fn_body
