(** Static per-kernel memory footprint.

    Bounds a lowered kernel's working set without running it, reusing
    {!Unit_tir.Linear} interval arithmetic:

    - {b scratch}: peak bytes held by nested [Alloc]s ([Buffer.size] is
      static; peaks follow the block structure — siblings don't coexist,
      nested allocations stack);
    - {b tile windows}: for each [Intrin_call], the single-issue working
      set — the output and input tile windows spanned by the tile
      strides times the instruction's axis extents;
    - {b touched ranges}: for every non-scratch buffer, the exact byte
      range the kernel addresses, from [Linear.bounds] on each access
      index under the loop/let environment.  An index the interval
      machinery cannot bound charges the whole buffer (conservative,
      never under-reports).

    Surfaced per-op by [Unit_core.Memplan] as the [mem_report] of
    [unitc memplan]. *)

type report = {
  fp_alloc_bytes : int;  (** peak concurrent [Alloc] scratch *)
  fp_tile_window_bytes : int;
      (** widest single-issue instruction tile working set *)
  fp_touched : (string * int) list;
      (** buffer name -> addressed bytes, name-sorted *)
  fp_total_bytes : int;  (** scratch peak + sum of touched *)
}

val of_stmt :
  ?intrin:(string -> Analysis.intrin_meta option) -> Unit_tir.Stmt.t -> report
(** The default [intrin] lookup knows no instructions; their tile windows
    then count one element per tile. *)

val of_func :
  ?intrin:(string -> Analysis.intrin_meta option) -> Unit_tir.Lower.func -> report
