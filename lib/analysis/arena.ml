open Unit_codegen
open Unit_graph
open Unit_tir

(* The planner proposes, the checker proves.

   [plan] runs greedy best-fit over the liveness interference relation:
   intermediates are placed largest-first, each into the tightest gap of
   its storage class's arena that no interfering, already-placed tensor
   occupies.  [check] then re-derives liveness from the graph and
   verifies the emitted plan from scratch — every intermediate planned
   exactly once, every slot inside its arena and big enough, and no two
   interfering live ranges sharing a byte.  The checker never trusts the
   planner's intermediate state, so a planner bug (or a hand-corrupted
   plan) surfaces as structured [Diag.Mem_plan] errors instead of silent
   aliasing at run time. *)

type slot = {
  s_id : Graph.id;
  s_class : Ndarray.storage_class;
  s_off : int;  (* word offset within the class arena *)
  s_words : int;
}

type t = {
  p_float_words : int;
  p_int_words : int;
  p_int64_words : int;
  p_slots : slot list;  (* ascending node id *)
}

let class_words p = function
  | Ndarray.Float_class -> p.p_float_words
  | Ndarray.Int_class -> p.p_int_words
  | Ndarray.Int64_class -> p.p_int64_words

let class_name = function
  | Ndarray.Float_class -> "float"
  | Ndarray.Int_class -> "int"
  | Ndarray.Int64_class -> "int64"

let arena_words p = p.p_float_words + p.p_int_words + p.p_int64_words
let arena_bytes p = arena_words p * Liveness.word_bytes

(* Byte offset of a slot in the single logical arena: the three class
   regions are laid out [float | int | int64] back to back. *)
let byte_offset p s =
  let base =
    match s.s_class with
    | Ndarray.Float_class -> 0
    | Ndarray.Int_class -> p.p_float_words
    | Ndarray.Int64_class -> p.p_float_words + p.p_int_words
  in
  (base + s.s_off) * Liveness.word_bytes

(* ---------- planner ---------- *)

let plan_ranges ranges =
  let planned =
    Array.to_list ranges
    |> List.filter (fun (r : Liveness.range) ->
           r.Liveness.lv_intermediate && r.Liveness.lv_elems > 0)
    (* largest first; ties by id so the plan is deterministic *)
    |> List.sort (fun (a : Liveness.range) (b : Liveness.range) ->
           match compare b.Liveness.lv_elems a.Liveness.lv_elems with
           | 0 -> compare a.Liveness.lv_id b.Liveness.lv_id
           | c -> c)
  in
  let placed : (Ndarray.storage_class * slot list) list ref =
    ref
      [ (Ndarray.Float_class, []); (Ndarray.Int_class, []); (Ndarray.Int64_class, []) ]
  in
  let place (r : Liveness.range) =
    let cls = r.Liveness.lv_class in
    let words = r.Liveness.lv_elems in
    let peers = List.assoc cls !placed in
    (* intervals already claimed by tensors live at the same time *)
    let busy =
      List.filter
        (fun s -> Liveness.interfere ranges.(s.s_id) r)
        peers
      |> List.map (fun s -> (s.s_off, s.s_off + s.s_words))
      |> List.sort compare
    in
    (* best fit: the tightest gap between busy intervals that holds
       [words]; falls back to first free offset past the last one *)
    let best = ref None in
    let consider off cap =
      if cap >= words then
        match !best with
        | Some (_, best_cap) when best_cap <= cap -> ()
        | _ -> best := Some (off, cap)
    in
    let frontier =
      List.fold_left
        (fun frontier (lo, hi) ->
          if lo > frontier then consider frontier (lo - frontier);
          Stdlib.max frontier hi)
        0 busy
    in
    let off = match !best with Some (off, _) -> off | None -> frontier in
    let slot = { s_id = r.Liveness.lv_id; s_class = cls; s_off = off; s_words = words } in
    placed :=
      List.map
        (fun (c, ss) -> if c = cls then (c, slot :: ss) else (c, ss))
        !placed;
    slot
  in
  let slots = List.map place planned in
  let total cls =
    List.fold_left
      (fun acc s -> if s.s_class = cls then Stdlib.max acc (s.s_off + s.s_words) else acc)
      0 slots
  in
  { p_float_words = total Ndarray.Float_class;
    p_int_words = total Ndarray.Int_class;
    p_int64_words = total Ndarray.Int64_class;
    p_slots = List.sort (fun a b -> compare a.s_id b.s_id) slots
  }

let plan g = plan_ranges (Liveness.analyze g)

(* ---------- the independent overlap checker ---------- *)

let check g p =
  let ranges = Liveness.analyze g in
  let diags = ref [] in
  let push d = diags := d :: !diags in
  let slots : (int, slot) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if Hashtbl.mem slots s.s_id then
        push
          (Diag.errorf Diag.Mem_plan "node %d is planned twice" s.s_id)
      else Hashtbl.replace slots s.s_id s)
    p.p_slots;
  (* 1. every live intermediate has a slot, and no slot names a
        non-intermediate (weights/inputs must keep private storage) *)
  Array.iter
    (fun (r : Liveness.range) ->
      let planned = Hashtbl.find_opt slots r.Liveness.lv_id in
      if r.Liveness.lv_intermediate && r.Liveness.lv_elems > 0 then begin
        match planned with
        | None ->
          push
            (Diag.errorf Diag.Mem_plan "intermediate %s (node %d) has no arena slot"
               r.Liveness.lv_name r.Liveness.lv_id)
        | Some s ->
          if s.s_class <> r.Liveness.lv_class then
            push
              (Diag.errorf Diag.Mem_plan
                 "%s (node %d): slot in the %s arena but the tensor is %s-class"
                 r.Liveness.lv_name r.Liveness.lv_id (class_name s.s_class)
                 (class_name r.Liveness.lv_class));
          if s.s_words < r.Liveness.lv_elems then
            push
              (Diag.errorf Diag.Mem_plan
                 "%s (node %d): slot holds %d words but the tensor needs %d"
                 r.Liveness.lv_name r.Liveness.lv_id s.s_words r.Liveness.lv_elems);
          if s.s_off < 0 then
            push
              (Diag.errorf Diag.Mem_plan "%s (node %d): negative offset %d"
                 r.Liveness.lv_name r.Liveness.lv_id s.s_off);
          if s.s_off + s.s_words > class_words p s.s_class then
            push
              (Diag.errorf Diag.Mem_plan
                 "%s (node %d): slot [%d, %d) escapes the %d-word %s arena"
                 r.Liveness.lv_name r.Liveness.lv_id s.s_off (s.s_off + s.s_words)
                 (class_words p s.s_class) (class_name s.s_class))
      end
      else
        match planned with
        | Some _ ->
          push
            (Diag.errorf Diag.Mem_plan
               "%s (node %d) is not an arena-eligible intermediate but has a slot"
               r.Liveness.lv_name r.Liveness.lv_id)
        | None -> ())
    ranges;
  (* 2. interfering live ranges must be byte-disjoint *)
  let slot_list = Hashtbl.fold (fun _ s acc -> s :: acc) slots [] in
  let slot_list = List.sort (fun a b -> compare a.s_id b.s_id) slot_list in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
      List.iter
        (fun b ->
          if
            a.s_class = b.s_class
            && a.s_id < Array.length ranges
            && b.s_id < Array.length ranges
            && Liveness.interfere ranges.(a.s_id) ranges.(b.s_id)
            && a.s_off < b.s_off + b.s_words
            && b.s_off < a.s_off + a.s_words
          then
            push
              (Diag.errorf Diag.Mem_plan
                 "%s (node %d, levels [%d, %d]) and %s (node %d, levels [%d, %d]) are live together but share %s-arena words [%d, %d)"
                 ranges.(a.s_id).Liveness.lv_name a.s_id
                 ranges.(a.s_id).Liveness.lv_def ranges.(a.s_id).Liveness.lv_last
                 ranges.(b.s_id).Liveness.lv_name b.s_id
                 ranges.(b.s_id).Liveness.lv_def ranges.(b.s_id).Liveness.lv_last
                 (class_name a.s_class)
                 (Stdlib.max a.s_off b.s_off)
                 (Stdlib.min (a.s_off + a.s_words) (b.s_off + b.s_words))))
        rest;
      pairs rest
  in
  pairs slot_list;
  (* slots referencing nodes outside the graph *)
  List.iter
    (fun s ->
      if s.s_id < 0 || s.s_id >= Array.length ranges then
        push
          (Diag.errorf Diag.Mem_plan "slot references node %d outside the graph"
             s.s_id))
    p.p_slots;
  List.rev !diags

(* ---------- lowering to the executor's plan, stats ---------- *)

let exec_plan p =
  { Executor.ap_float_words = p.p_float_words;
    ap_int_words = p.p_int_words;
    ap_int64_words = p.p_int64_words;
    ap_slots =
      List.map
        (fun s ->
          { Executor.sl_id = s.s_id;
            sl_class = s.s_class;
            sl_offset = s.s_off;
            sl_words = s.s_words
          })
        p.p_slots
  }

type stats = {
  st_naive_bytes : int;
  st_peak_bytes : int;
  st_arena_bytes : int;
  st_reuse_ratio : float;
}

let stats ranges p =
  let naive = Liveness.naive_bytes ranges in
  { st_naive_bytes = naive;
    st_peak_bytes = Liveness.peak_bytes ranges;
    st_arena_bytes = arena_bytes p;
    st_reuse_ratio =
      (if naive = 0 then 1.0
       else float_of_int (arena_bytes p) /. float_of_int naive)
  }
