(** Arena memory planning over {!Liveness} ranges — the planner proposes,
    the checker proves.

    {!plan} assigns every intermediate tensor an offset in one shared
    arena with greedy best-fit over the interference relation: tensors
    are placed largest-first, each into the tightest free gap its
    concurrently-live peers leave in the storage class's region.  The
    logical arena is the concatenation [float | int | int64] of three
    class regions (OCaml arrays are dtype-specialized); offsets and sizes
    are in 8-byte host words, so element offsets are exact.

    {!check} is the independent verifier: it re-derives liveness from the
    graph and validates the plan from scratch, reporting structured
    {!Unit_tir.Diag.Mem_plan} errors — an unplanned intermediate, a slot
    escaping its arena or too small for its tensor, or two interfering
    live ranges sharing bytes.  The executor refuses nothing at run time
    beyond capacity/class sanity; soundness is the checker's job. *)

open Unit_codegen
open Unit_graph
open Unit_tir

type slot = {
  s_id : Graph.id;
  s_class : Ndarray.storage_class;
  s_off : int;  (** word offset within the class region *)
  s_words : int;
}

type t = {
  p_float_words : int;
  p_int_words : int;
  p_int64_words : int;
  p_slots : slot list;  (** ascending node id *)
}

val plan : Graph.t -> t

val plan_ranges : Liveness.range array -> t
(** Plan from precomputed ranges (so callers can reuse one analysis for
    planning and reporting). *)

val check : Graph.t -> t -> Diag.t list
(** Independent overlap verification; empty means the plan is sound.
    Liveness is recomputed from the graph — the checker shares no state
    with the planner. *)

val exec_plan : t -> Executor.arena_plan
(** Lower to the executor's primitive plan representation. *)

val arena_words : t -> int
val arena_bytes : t -> int

val byte_offset : t -> slot -> int
(** Offset of the slot in the single logical arena
    ([float | int | int64] regions back to back), in bytes. *)

val class_name : Ndarray.storage_class -> string

type stats = {
  st_naive_bytes : int;  (** per-op buffers retained to the end *)
  st_peak_bytes : int;  (** liveness floor: best any plan could do *)
  st_arena_bytes : int;  (** what this plan allocates *)
  st_reuse_ratio : float;  (** arena / naive; 1.0 on an empty graph *)
}

val stats : Liveness.range array -> t -> stats
