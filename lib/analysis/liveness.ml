open Unit_codegen
open Unit_graph

(* Per-tensor live range against the executor's level-parallel schedule.

   The executor evaluates level by level ([Executor.schedule_levels]):
   all nodes of a level run concurrently, so a tensor is defined at its
   producer's level and must stay materialized through the level of its
   last consumer — including that whole level, because the consumer runs
   in parallel with every other node scheduled there.  Two tensors whose
   inclusive [def, last] ranges intersect can be in memory at the same
   time and therefore interfere. *)

type range = {
  lv_id : Graph.id;
  lv_name : string;
  lv_def : int;  (* producer's schedule level *)
  lv_last : int;  (* last level that reads the tensor (inclusive) *)
  lv_elems : int;  (* element count, from the declared shape *)
  lv_class : Ndarray.storage_class;
  lv_bytes : int;  (* host bytes: one backing-array word per element *)
  lv_intermediate : bool;  (* neither Input nor Weight *)
}

(* Every tensor element occupies one word of its class's backing array
   ([float array] / [int array] / [int64 array]), independent of the
   dtype's wire width — host bytes, the quantity the executor actually
   allocates. *)
let word_bytes = 8

let interfere a b = a.lv_def <= b.lv_last && b.lv_def <= a.lv_last

let analyze g =
  let levels = Executor.schedule_levels g in
  let maxl = Array.fold_left Stdlib.max 0 levels in
  let last = Array.copy levels in
  List.iter
    (fun (n : Graph.node) ->
      List.iter
        (fun i -> last.(i) <- Stdlib.max last.(i) levels.(n.Graph.id))
        n.Graph.inputs)
    (Graph.nodes g);
  (* the output escapes to the caller: pin it past the final level so no
     reuse can clobber it before [run] returns *)
  last.(Graph.output g) <- maxl + 1;
  let ranges =
    List.map
      (fun (n : Graph.node) ->
        let id = n.Graph.id in
        let elems = List.fold_left ( * ) 1 (Graph.shape_of g id) in
        let intermediate =
          match n.Graph.kind with
          | Graph.Input _ | Graph.Weight _ -> false
          | _ -> true
        in
        { lv_id = id;
          lv_name = n.Graph.name;
          lv_def = levels.(id);
          lv_last = last.(id);
          lv_elems = elems;
          lv_class = Ndarray.class_of_dtype (Graph.dtype_of g id);
          lv_bytes = elems * word_bytes;
          lv_intermediate = intermediate
        })
      (Graph.nodes g)
  in
  Array.of_list ranges

let peak_bytes ranges =
  let maxl =
    Array.fold_left (fun acc r -> Stdlib.max acc r.lv_last) 0 ranges
  in
  let peak = ref 0 in
  for l = 1 to maxl do
    let live =
      Array.fold_left
        (fun acc r ->
          if r.lv_intermediate && r.lv_def <= l && l <= r.lv_last then
            acc + r.lv_bytes
          else acc)
        0 ranges
    in
    peak := Stdlib.max !peak live
  done;
  !peak

let naive_bytes ranges =
  Array.fold_left
    (fun acc r -> if r.lv_intermediate then acc + r.lv_bytes else acc)
    0 ranges
