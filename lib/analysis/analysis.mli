(** Static dependence analysis and schedule-legality checking.

    [Validate] proves a program well-formed (scoping, bounds, tile
    windows); this module proves the {e schedule annotations} safe to
    honour:

    - {b races}: a [For {kind = Parallel}] loop is flagged when two of
      its iterations can touch the same buffer element with at least one
      write.  Iteration footprints are compared with the interval
      machinery of {!Unit_tir.Linear}; fused loop variables appearing
      under [Div]/[Mod] are first split back into their coordinates so
      the footprints become linear again.
    - {b carried dependences}: [Vectorized] and [Unrolled] loops whose
      iterations conflict through memory, excepting recognizable
      reduction patterns ([out\[i\] = out\[i\] + _] and accumulating
      instruction tiles), which the scalar and SIMD semantics both
      tolerate.
    - {b tensorize legality}: each [Intrin_call]'s output tile must form
      an injective map from the instruction's spatial lanes to buffer
      elements, must not stride along reduction axes, and a
      non-accumulating instruction must not be re-issued over the same
      output tile by an enclosing reduction loop.
    - {b overflow lint}: narrowing integer casts and accumulation chains
      are interval-checked against their dtype; a single arithmetic node
      that provably wraps its own dtype is an error, a whole-loop
      accumulation that may exceed the accumulator range is a warning.

    Provable violations are {!Unit_tir.Diag.Error}s (the pipeline rejects
    the schedule); conflicts that merely cannot be ruled out are
    {!Unit_tir.Diag.Warning}s, so a sound-but-unanalyzable schedule is
    surfaced without being rejected. *)

(** What the analyzer needs to know about one tensorized instruction.
    Like [Validate]'s [intrin_axes] parameter, this keeps the library
    free of an ISA dependency: callers with a registry supply a lookup
    (see [Unit_core.Pipeline.intrin_meta]). *)
type intrin_meta = {
  im_spatial : (string * int) list;  (** spatial axis name -> extent *)
  im_reduce : (string * int) list;  (** reduce axis name -> extent *)
  im_operands : Unit_dtype.Dtype.t list;
      (** dtypes of the multiplicand inputs (accumulator excluded) *)
  im_accumulates : bool;
      (** the instruction adds into its output tile rather than
          overwriting it *)
}

val check_stmt :
  ?intrin:(string -> intrin_meta option) -> Unit_tir.Stmt.t -> Unit_tir.Diag.t list
(** Analyze a bare statement.  The default [intrin] lookup knows no
    instructions; calls it cannot resolve are skipped here because
    {!Unit_tir.Validate} already rejects them. *)

val check_func :
  ?intrin:(string -> intrin_meta option) -> Unit_tir.Lower.func -> Unit_tir.Diag.t list
(** Analyze a lowered function body.  Returned diagnostics preserve
    program order; split with {!Unit_tir.Diag.errors} /
    {!Unit_tir.Diag.warnings}. *)
