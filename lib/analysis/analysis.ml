open Unit_dtype
open Unit_tir

type intrin_meta = {
  im_spatial : (string * int) list;
  im_reduce : (string * int) list;
  im_operands : Dtype.t list;
  im_accumulates : bool;
}

(* ------------------------------------------------------------------ *)
(* Saturating interval arithmetic.                                     *)
(*                                                                     *)
(* Value ranges are tracked in OCaml ints clamped well inside the      *)
(* native range, so the analyzer's own arithmetic cannot wrap while    *)
(* reasoning about dtypes up to I64 (whose range is clamped inward —   *)
(* an under-approximation that can only make the lint quieter, never   *)
(* produce a false error).                                             *)
(* ------------------------------------------------------------------ *)

let range_cap = max_int / 4

let sat x = if x > range_cap then range_cap else if x < -range_cap then -range_cap else x
let sat_add a b = sat (a + b)

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if abs a > range_cap / abs b then
    if (a > 0) = (b > 0) then range_cap else -range_cap
  else sat (a * b)

let r_add (al, ah) (bl, bh) = (sat_add al bl, sat_add ah bh)
let r_sub (al, ah) (bl, bh) = (sat_add al (-bh), sat_add ah (-bl))

let r_mul (al, ah) (bl, bh) =
  let ps = [ sat_mul al bl; sat_mul al bh; sat_mul ah bl; sat_mul ah bh ] in
  (List.fold_left Stdlib.min range_cap ps, List.fold_left Stdlib.max (-range_cap) ps)

let r_hull (al, ah) (bl, bh) = (Stdlib.min al bl, Stdlib.max ah bh)
let r_hull0 r = r_hull r (0, 0)
let r_scale k r = r_mul (k, k) r

let dtype_range dt =
  if Dtype.is_integer dt then
    let clamp64 v =
      if Int64.compare v (Int64.of_int range_cap) > 0 then range_cap
      else if Int64.compare v (Int64.of_int (-range_cap)) < 0 then -range_cap
      else Int64.to_int v
    in
    Some (clamp64 (Dtype.min_int_value dt), clamp64 (Dtype.max_int_value dt))
  else None

let fits_dtype (lo, hi) dt =
  match dtype_range dt with Some (dl, dh) -> lo >= dl && hi <= dh | None -> true

(* ------------------------------------------------------------------ *)
(* Value-range analysis over expressions (for the overflow lint).      *)
(* Unlike Linear.bounds this falls back to dtype ranges for loads and  *)
(* unanalyzable subterms instead of giving up.                         *)
(* ------------------------------------------------------------------ *)

let rec value_range env e =
  let dt = Texpr.dtype_of e in
  let top = match dtype_range dt with Some r -> r | None -> (-range_cap, range_cap) in
  match e with
  | Texpr.Imm v ->
    if Dtype.is_integer (Value.dtype v) then
      let x = sat (Int64.to_int (Value.to_int64 v)) in
      (x, x)
    else top
  | Texpr.Var v -> (match env v with Some r -> r | None -> top)
  | Texpr.Load (b, _) ->
    (match dtype_range b.Buffer.dtype with Some r -> r | None -> (-range_cap, range_cap))
  | Texpr.Cast (dst, inner) ->
    let r = value_range env inner in
    if Dtype.is_integer dst && Dtype.is_integer (Texpr.dtype_of inner) then
      if fits_dtype r dst then r else top
    else top
  | Texpr.Binop (Texpr.Add, a, b) -> r_add (value_range env a) (value_range env b)
  | Texpr.Binop (Texpr.Sub, a, b) -> r_sub (value_range env a) (value_range env b)
  | Texpr.Binop (Texpr.Mul, a, b) -> r_mul (value_range env a) (value_range env b)
  | Texpr.Binop (Texpr.Div, a, b) ->
    (match Texpr.as_const_int b with
     | Some c when c > 0 ->
       let l, h = value_range env a in
       (l / c, h / c)
     | _ -> top)
  | Texpr.Binop (Texpr.Mod, a, b) ->
    (match Texpr.as_const_int b with
     | Some c when c > 0 ->
       let l, _ = value_range env a in
       if l >= 0 then (0, c - 1) else (-(c - 1), c - 1)
     | _ -> top)
  | Texpr.Binop (Texpr.Min, a, b) ->
    let al, ah = value_range env a and bl, bh = value_range env b in
    (Stdlib.min al bl, Stdlib.min ah bh)
  | Texpr.Binop (Texpr.Max, a, b) ->
    let al, ah = value_range env a and bl, bh = value_range env b in
    (Stdlib.max al bl, Stdlib.max ah bh)
  | Texpr.Select (_, a, b) -> r_hull (value_range env a) (value_range env b)
  | Texpr.Cmp _ | Texpr.And _ | Texpr.Or _ | Texpr.Not _ -> (0, 1)

(* ------------------------------------------------------------------ *)
(* Divmod normalization.                                               *)
(*                                                                     *)
(* Lowering addresses a fused loop of extent Eo*Ei as [f / Ei] and     *)
(* [f mod Ei], which defeats Linear.coefficient_of.  Splitting f into  *)
(* fresh coordinates (fq, fr) with f := fq*Ei + fr and simplifying     *)
(* [(fq*Ei + fr) / Ei] back to [fq] recovers a linear index in the     *)
(* coordinates, over exactly the same iteration set (the fuse extents  *)
(* multiply exactly).  Chained fuses unfold one divisor per round.     *)
(* ------------------------------------------------------------------ *)

let direct_divisors v e =
  let rec go acc e =
    let acc =
      match e with
      | Texpr.Binop ((Texpr.Div | Texpr.Mod), Texpr.Var w, b) when Var.equal v w ->
        (match Texpr.as_const_int b with Some c when c > 1 -> c :: acc | _ -> acc)
      | _ -> acc
    in
    match e with
    | Texpr.Imm _ | Texpr.Var _ -> acc
    | Texpr.Load (_, ix) -> go acc ix
    | Texpr.Binop (_, a, b) | Texpr.Cmp (_, a, b) | Texpr.And (a, b) | Texpr.Or (a, b) ->
      go (go acc a) b
    | Texpr.Not a | Texpr.Cast (_, a) -> go acc a
    | Texpr.Select (c, a, b) -> go (go (go acc c) a) b
  in
  go [] e

(* Rewrite [(x*c + y) / c -> x] and [(x*c + y) mod c -> y] when
   0 <= y < c and x >= 0 — the shapes substitution introduces. *)
let rec simp env e =
  let resolved =
    match e with
    | Texpr.Imm _ | Texpr.Var _ -> e
    | Texpr.Load (b, ix) -> Texpr.load b (simp env ix)
    | Texpr.Binop (op, a, b) -> Texpr.binop op (simp env a) (simp env b)
    | Texpr.Cmp (c, a, b) -> Texpr.cmp c (simp env a) (simp env b)
    | Texpr.And (a, b) -> Texpr.and_ (simp env a) (simp env b)
    | Texpr.Or (a, b) -> Texpr.or_ (simp env a) (simp env b)
    | Texpr.Not a -> Texpr.not_ (simp env a)
    | Texpr.Cast (dt, a) -> Texpr.cast dt (simp env a)
    | Texpr.Select (c, a, b) -> Texpr.select (simp env c) (simp env a) (simp env b)
  in
  let reducible x y c =
    match Linear.bounds ~env y, Linear.bounds ~env x with
    | Some (ylo, yhi), Some (xlo, _) -> ylo >= 0 && yhi < c && xlo >= 0
    | _ -> false
  in
  let within c a =
    match Linear.bounds ~env a with
    | Some (lo, hi) -> lo >= 0 && hi < c
    | None -> false
  in
  match resolved with
  | Texpr.Binop
      ((Texpr.Div | Texpr.Mod) as op,
       Texpr.Binop (Texpr.Add, Texpr.Binop (Texpr.Mul, x, c1), y),
       c2) ->
    (match Texpr.as_const_int c1, Texpr.as_const_int c2 with
     | Some a, Some b when a = b && a > 0 && reducible x y a ->
       if op = Texpr.Div then x else y
     | _ -> resolved)
  | Texpr.Binop (Texpr.Div, a, b) ->
    (* a in [0, c) divides to 0 — e.g. the quotient of an extent-1 fuse
       component *)
    (match Texpr.as_const_int b with
     | Some c when c > 0 && within c a -> Texpr.int_imm ~dtype:(Texpr.dtype_of a) 0
     | _ -> resolved)
  | Texpr.Binop (Texpr.Mod, a, b) ->
    (match Texpr.as_const_int b with
     | Some c when c > 0 && within c a -> a
     | _ -> resolved)
  | other -> other

(* Split fused coordinates until no coordinate appears under a matching
   Div/Mod.  Generic over the items carrying the expressions so both
   access records and bare index expressions can be normalized:
   [exprs_of] lists an item's expressions, [rewrite_in] maps a rewriter
   over them.  [env_other] bounds every non-coordinate variable. *)
let normalize_coords ~env_other ~exprs_of ~rewrite_in var extent items =
  let rec loop coords items round =
    if round >= 8 then (coords, items)
    else
      let exprs = List.concat_map exprs_of items in
      let split =
        List.find_map
          (fun (cv, ce) ->
            if ce <= 1 then None
            else
              List.concat_map (direct_divisors cv) exprs
              |> List.sort_uniq compare
              |> List.find_opt (fun c -> c > 1 && c < ce && ce mod c = 0)
              |> Option.map (fun c -> (cv, ce, c)))
          coords
      in
      match split with
      | None ->
        (* final cleanup: residual Div/Mod that bounds alone resolve
           (quotients over a coordinate's whole extent etc.) *)
        let env v =
          match
            List.find_map
              (fun (w, e) -> if Var.equal v w then Some (0, e - 1) else None)
              coords
          with
          | Some r -> Some r
          | None -> env_other v
        in
        (coords, List.map (rewrite_in (simp env)) items)
      | Some (cv, ce, c) ->
        let vq = Var.create (cv.Var.name ^ "#q") in
        let vr = Var.create (cv.Var.name ^ "#r") in
        let coords =
          List.concat_map
            (fun (w, e) ->
              if Var.equal w cv then [ (vq, ce / c); (vr, c) ] else [ (w, e) ])
            coords
        in
        let env v =
          match
            List.find_map
              (fun (w, e) -> if Var.equal v w then Some (0, e - 1) else None)
              coords
          with
          | Some r -> Some r
          | None -> env_other v
        in
        let repl =
          Texpr.add (Texpr.mul (Texpr.var vq) (Texpr.int_imm c)) (Texpr.var vr)
        in
        let rewrite e = simp env (Texpr.substitute [ (cv, repl) ] e) in
        loop coords (List.map (rewrite_in rewrite) items) (round + 1)
  in
  loop [ (var, extent) ] items 0

(* ------------------------------------------------------------------ *)
(* Access collection.                                                  *)
(* ------------------------------------------------------------------ *)

(* One memory access of the analyzed loop body. *)
type access = {
  acc_buf : Buffer.t;
  acc_index : Texpr.t;
  acc_span : int * int;  (* register-window widening around the index *)
  acc_write : bool;
  acc_reduction : bool;  (* write that accumulates into its own element *)
  acc_inner : (Var.t * (int * int)) list;  (* vars bound inside the loop *)
  acc_guards : (Texpr.t * int) list;
  acc_what : string;
}

let access_exprs a = a.acc_index :: List.map fst a.acc_guards

let map_access_exprs f a =
  { a with
    acc_index = f a.acc_index;
    acc_guards = List.map (fun (e, b) -> (f e, b)) a.acc_guards
  }

let tile_span ~axes (tile : Stmt.tile) =
  List.fold_left
    (fun (lo, hi) (axis, stride) ->
      let extent = match List.assoc_opt axis axes with Some e -> e | None -> 1 in
      let step = stride * (extent - 1) in
      (lo + Stdlib.min 0 step, hi + Stdlib.max 0 step))
    (0, 0) tile.Stmt.tile_strides

let is_accumulating_store buf index value =
  List.exists
    (fun (b, ix) -> Buffer.equal b buf && Texpr.equal_structural ix index)
    (Texpr.loads_of value)

(* Collect every access of [body], tracking variables bound inside the
   analyzed loop, guard refinements, and locally allocated buffers
   (private per iteration, hence excluded from race analysis). *)
let collect_accesses ~intrin body =
  let out = ref [] in
  let push a = out := a :: !out in
  let reads_of ~inner ~guards ~local e =
    List.iter
      (fun (b, ix) ->
        if not (List.exists (Buffer.equal b) local) then
          push
            { acc_buf = b;
              acc_index = ix;
              acc_span = (0, 0);
              acc_write = false;
              acc_reduction = false;
              acc_inner = inner;
              acc_guards = guards;
              acc_what = "load"
            })
      (Texpr.loads_of e)
  in
  let rec go inner guards local (s : Stmt.t) =
    match s with
    | Stmt.Nop -> ()
    | Stmt.Seq stmts -> List.iter (go inner guards local) stmts
    | Stmt.Store (buf, index, value) ->
      reads_of ~inner ~guards ~local index;
      reads_of ~inner ~guards ~local value;
      if not (List.exists (Buffer.equal buf) local) then
        push
          { acc_buf = buf;
            acc_index = index;
            acc_span = (0, 0);
            acc_write = true;
            acc_reduction = is_accumulating_store buf index value;
            acc_inner = inner;
            acc_guards = guards;
            acc_what = "store"
          }
    | Stmt.For { var; extent; body; _ } ->
      go ((var, (0, Stdlib.max 0 (extent - 1))) :: inner) guards local body
    | Stmt.If { cond; then_; else_; _ } ->
      reads_of ~inner ~guards ~local cond;
      let refined =
        match cond with
        | Texpr.Cmp (Texpr.Lt, e, bound) ->
          (match Texpr.as_const_int bound with
           | Some c -> (e, c) :: guards
           | None -> guards)
        | Texpr.Cmp (Texpr.Le, e, bound) ->
          (match Texpr.as_const_int bound with
           | Some c -> (e, c + 1) :: guards
           | None -> guards)
        | _ -> guards
      in
      go inner refined local then_;
      Option.iter (go inner guards local) else_
    | Stmt.Let (v, e, body) ->
      reads_of ~inner ~guards ~local e;
      go ((v, (-range_cap, range_cap)) :: inner) guards local body
    | Stmt.Alloc (b, body) -> go inner guards (b :: local) body
    | Stmt.Intrin_call { intrin = name; output; inputs } ->
      let meta = intrin name in
      let axes =
        match meta with
        | Some m -> m.im_spatial @ m.im_reduce
        | None -> []
      in
      let accumulates =
        match meta with Some m -> m.im_accumulates | None -> true
      in
      let tile_access ~write what (tile : Stmt.tile) =
        if not (List.exists (Buffer.equal tile.Stmt.tile_buf) local) then
          push
            { acc_buf = tile.Stmt.tile_buf;
              acc_index = tile.Stmt.tile_base;
              acc_span = tile_span ~axes tile;
              acc_write = write;
              acc_reduction = write && accumulates;
              acc_inner = inner;
              acc_guards = guards;
              acc_what = what
            }
      in
      tile_access ~write:true (name ^ " output tile") output;
      if accumulates then tile_access ~write:false (name ^ " accumulator tile") output;
      List.iter (fun (_, tl) -> tile_access ~write:false (name ^ " input tile") tl) inputs
  in
  go [] [] [] body;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Cross-iteration conflict test.                                      *)
(* ------------------------------------------------------------------ *)

type conflict =
  | Disjoint
  | Overlap  (* provably conflicting *)
  | Unknown

(* Sufficient criterion for the footprints of two distinct coordinate
   vectors to never meet: with coordinates sorted by |coefficient|
   ascending, each coefficient must out-jump the whole reach of the
   smaller ones plus the residual-difference window [m]. *)
let provably_disjoint coeffs m =
  let sorted = List.sort (fun (a, _) (b, _) -> compare (abs a) (abs b)) coeffs in
  let rec go reach = function
    | [] -> true
    | (c, e) :: rest ->
      let c = abs c in
      c > reach + m && go (sat_add reach (sat_mul c (e - 1))) rest
  in
  go 0 sorted

(* Interval of [index + span] with the iteration coordinates and every
   outer variable pinned to 0 (outer contributions cancel between two
   iterations of the same loop) and inner variables free over their
   ranges.  Guard refinements are intersected in only when they help. *)
let residual ~coords ~outer (a : access) =
  let env v =
    if List.exists (fun (w, _) -> Var.equal v w) coords then Some (0, 0)
    else
      match
        List.find_map
          (fun (w, r) -> if Var.equal v w then Some r else None)
          a.acc_inner
      with
      | Some r -> Some r
      | None -> if List.exists (Var.equal v) outer then Some (0, 0) else None
  in
  let plain = Linear.bounds ~env a.acc_index in
  let guarded =
    match a.acc_guards with
    | [] -> None
    | guards -> Validate.refined_bounds ~env ~guards a.acc_index
  in
  let combined =
    match plain, guarded with
    | Some (al, ah), Some (bl, bh) -> Some (Stdlib.max al bl, Stdlib.min ah bh)
    | Some r, None | None, Some r -> Some r
    | None, None -> None
  in
  Option.map (fun (lo, hi) -> (lo + fst a.acc_span, hi + snd a.acc_span)) combined

let same_footprint a b =
  Texpr.equal_structural a.acc_index b.acc_index && a.acc_span = b.acc_span

(* Conflict between access [a] of one iteration and access [b] of a
   different iteration of the loop whose (normalized) coordinates are
   [coords]. *)
let cross_iteration ~coords ~outer a b =
  let identical = same_footprint a b in
  let coeffs =
    List.filter_map
      (fun (cv, e) ->
        if e <= 1 then None
        else
          match
            ( Linear.coefficient_of a.acc_index cv,
              Linear.coefficient_of b.acc_index cv )
          with
          | Some ca, Some cb when ca = cb -> Some (Some (ca, e))
          | _ -> Some None)
      coords
  in
  if List.exists (( = ) None) coeffs then Unknown
  else
    let coeffs = List.filter_map Fun.id coeffs in
    if coeffs = [] then Disjoint (* no two distinct iterations exist *)
    else if
      (* Outer-variable contributions only cancel when both indices use
         them identically. *)
      (not identical)
      && not
           (List.for_all
              (fun v ->
                match
                  ( Linear.coefficient_of a.acc_index v,
                    Linear.coefficient_of b.acc_index v )
                with
                | Some ca, Some cb -> ca = cb
                | _ -> false)
              outer)
    then Unknown
    else
      match residual ~coords ~outer a, residual ~coords ~outer b with
      | Some (alo, ahi), Some (blo, bhi) ->
        let m = Stdlib.max (abs (blo - ahi)) (abs (bhi - alo)) in
        if provably_disjoint coeffs m then Disjoint
        else if identical && List.exists (fun (c, _) -> c = 0) coeffs then
          (* A zero-coefficient coordinate leaves a structurally identical
             footprint untouched: two iterations provably collide. *)
          Overlap
        else Unknown
      | _ -> Unknown

(* ------------------------------------------------------------------ *)
(* Per-loop race / carried-dependence analysis.                        *)
(* ------------------------------------------------------------------ *)

let pair_kind a b = if a.acc_write && b.acc_write then "write/write" else "write/read"

let analyze_loop ~intrin ~outer_env ~push kind var extent body =
  let accesses = collect_accesses ~intrin body in
  let env_other v =
    match
      List.find_map
        (fun (w, r) -> if Var.equal v w then Some r else None)
        (List.concat_map (fun a -> a.acc_inner) accesses)
    with
    | Some r -> Some r
    | None ->
      List.find_map (fun (w, r) -> if Var.equal v w then Some r else None) outer_env
  in
  let coords, accesses =
    normalize_coords ~env_other ~exprs_of:access_exprs ~rewrite_in:map_access_exprs
      var extent accesses
  in
  let outer = List.map fst outer_env in
  let loop = var.Var.name in
  let reduction_exempt a b =
    (* the scalar semantics serializes vectorized/unrolled iterations, so
       a recognizable accumulation into one element is not a hazard *)
    kind <> Stmt.Parallel && same_footprint a b
    && List.for_all (fun x -> (not x.acc_write) || x.acc_reduction) [ a; b ]
  in
  let judge a b =
    if
      Buffer.equal a.acc_buf b.acc_buf
      && (a.acc_write || b.acc_write)
      && not (reduction_exempt a b)
    then begin
      let buf = a.acc_buf.Buffer.name in
      let what = pair_kind a b in
      match cross_iteration ~coords ~outer a b with
      | Disjoint -> ()
      | Overlap ->
        (match kind with
         | Stmt.Parallel ->
           push
             (Diag.errorf Diag.Race
                "parallel loop %s: iterations have a %s conflict on %s (%s vs %s)"
                loop what buf a.acc_what b.acc_what)
         | Stmt.Vectorized ->
           push
             (Diag.errorf Diag.Carried_dep
                "vectorized loop %s carries a non-reduction %s dependence on %s (%s vs %s)"
                loop what buf a.acc_what b.acc_what)
         | _ ->
           push
             (Diag.warnf Diag.Carried_dep
                "unrolled loop %s carries a %s dependence on %s (%s vs %s)" loop
                what buf a.acc_what b.acc_what))
      | Unknown ->
        (match kind with
         | Stmt.Parallel ->
           push
             (Diag.warnf Diag.Race
                "parallel loop %s: cannot prove iterations access %s disjointly (%s, %s vs %s)"
                loop buf what a.acc_what b.acc_what)
         | Stmt.Vectorized ->
           push
             (Diag.warnf Diag.Carried_dep
                "vectorized loop %s: cannot rule out a carried %s dependence on %s"
                loop what buf)
         | _ -> ())
    end
  in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
      List.iter (judge a) (a :: rest);
      pairs rest
  in
  pairs accesses

(* ------------------------------------------------------------------ *)
(* Tensorize legality and overflow at an Intrin_call.                  *)
(* ------------------------------------------------------------------ *)

(* How many times an enclosing loop of [extent] iterations revisits the
   same elements of [base]: the product of the extents of the loop's
   coordinates that provably do not move the index (after unfolding any
   fused div/mod addressing).  Unanalyzable coordinates count as
   revisits — conservative for a warning-level check. *)
let revisit_factor ~env_other var extent base =
  let coords, bases =
    normalize_coords ~env_other ~exprs_of:(fun e -> [ e ])
      ~rewrite_in:(fun f e -> f e)
      var extent [ base ]
  in
  let base = List.hd bases in
  List.fold_left
    (fun acc (cv, e) ->
      if e <= 1 then acc
      else
        match Linear.coefficient_of base cv with
        | Some 0 | None -> sat_mul acc e
        | Some _ -> acc)
    1 coords

let check_intrin ~push ~loops ~env_other name meta (output : Stmt.tile) =
  let out_buf = output.Stmt.tile_buf.Buffer.name in
  (* 1. the output tile must not stride along a reduction axis *)
  List.iter
    (fun (axis, stride) ->
      if stride <> 0 && List.mem_assoc axis meta.im_reduce then
        push
          (Diag.errorf Diag.Tensorize_footprint
             "%s: output tile on %s strides along reduction axis %s" name out_buf
             axis))
    output.Stmt.tile_strides;
  (* 2. distinct spatial lanes must hit distinct elements *)
  let spatial_strides =
    List.filter_map
      (fun (axis, extent) ->
        if extent <= 1 then None
        else
          Some
            ( axis,
              (match List.assoc_opt axis output.Stmt.tile_strides with
               | Some s -> s
               | None -> 0),
              extent ))
      meta.im_spatial
  in
  List.iter
    (fun (axis, stride, _) ->
      if stride = 0 then
        push
          (Diag.errorf Diag.Tensorize_footprint
             "%s: output tile on %s broadcasts along spatial axis %s — lanes collide"
             name out_buf axis))
    spatial_strides;
  let lane_coeffs = List.map (fun (_, s, e) -> (s, e)) spatial_strides in
  if
    List.for_all (fun (s, _) -> s <> 0) lane_coeffs
    && not (provably_disjoint lane_coeffs 0)
  then
    push
      (Diag.errorf Diag.Tensorize_footprint
         "%s: output tile on %s is not injective over its spatial lanes" name
         out_buf);
  (* 3. reuse of the output tile across enclosing loops requires a
        genuinely accumulating instruction *)
  let revisits =
    List.fold_left
      (fun acc (v, extent) ->
        sat_mul acc (revisit_factor ~env_other v extent output.Stmt.tile_base))
      1 loops
  in
  if revisits > 1 && not meta.im_accumulates then
    push
      (Diag.errorf Diag.Tensorize_footprint
         "%s does not accumulate, but enclosing loops re-issue it %d times over the same output tile on %s"
         name revisits out_buf);
  (* 4. accumulator range *)
  match meta.im_operands with
  | [ d1; d2 ] ->
    (match dtype_range d1, dtype_range d2 with
     | Some r1, Some r2 ->
       let per_mac = r_mul r1 r2 in
       let width = List.fold_left (fun acc (_, e) -> sat_mul acc e) 1 meta.im_reduce in
       let acc_dt = output.Stmt.tile_buf.Buffer.dtype in
       let single = r_hull0 (r_scale width per_mac) in
       (* Widening multiply-adds (operands strictly narrower than the
          accumulator, e.g. i16 [vpmaddwd] pairs into i32) can exceed the
          accumulator only at the symmetric corner where every operand is
          the type's most-negative value: the ISA defines that one result
          (saturation or wrap to INT_MIN), so erroring on it is a false
          positive.  Re-check with the most-negative operand value carved
          out; if that symmetric range fits, warn instead of reject. *)
       let symmetric dt r =
         match r with
         | lo, hi when Dtype.is_signed dt && lo < -hi -> (-hi, hi)
         | r -> r
       in
       let single_sym =
         r_hull0 (r_scale width (r_mul (symmetric d1 r1) (symmetric d2 r2)))
       in
       let widening =
         match dtype_range acc_dt with
         | Some (alo, ahi) ->
           (* both operand ranges strictly inside the accumulator's *)
           List.for_all
             (fun (lo, hi) -> lo > alo && hi < ahi)
             [ r1; r2 ]
         | None -> false
       in
       if not (fits_dtype single acc_dt) then begin
         if widening && fits_dtype single_sym acc_dt then
           push
             (Diag.warnf Diag.Overflow
                "%s: only the all-%d corner reaches %d in %s (%s) — defined by the widening idiom, not rejected"
                name (fst r1)
                (Stdlib.max (abs (fst single)) (abs (snd single)))
                out_buf (Dtype.to_string acc_dt))
         else
           push
             (Diag.errorf Diag.Overflow
                "%s: one issue accumulates up to %d into %s (%s)" name
                (Stdlib.max (abs (fst single)) (abs (snd single)))
                out_buf (Dtype.to_string acc_dt))
       end
       else begin
         let total = r_hull0 (r_scale revisits (r_scale width per_mac)) in
         if not (fits_dtype total acc_dt) then
           push
             (Diag.warnf Diag.Overflow
                "%s: accumulation chain over enclosing loops may reach %d, beyond %s range of %s"
                name
                (Stdlib.max (abs (fst total)) (abs (snd total)))
                (Dtype.to_string acc_dt) out_buf)
       end
     | _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Overflow lint for scalar expressions and stores.                    *)
(* ------------------------------------------------------------------ *)

(* Walk an expression, flagging integer nodes that provably wrap their
   own dtype (error) and narrowing casts that cannot be proven in range
   (warning); returns the node's value range. *)
let rec lint_expr ~push env e =
  match e with
  | Texpr.Imm _ | Texpr.Var _ -> value_range env e
  | Texpr.Load (b, ix) ->
    ignore (lint_expr ~push env ix);
    (match dtype_range b.Buffer.dtype with Some r -> r | None -> (-range_cap, range_cap))
  | Texpr.Cast (dst, inner) ->
    let r = lint_expr ~push env inner in
    let src = Texpr.dtype_of inner in
    if Dtype.is_integer src && Dtype.is_integer dst then
      if Dtype.can_cast_losslessly ~src ~dst || fits_dtype r dst then r
      else begin
        push
          (Diag.warnf Diag.Overflow
             "narrowing cast %s -> %s may truncate (operand range [%d, %d])"
             (Dtype.to_string src) (Dtype.to_string dst) (fst r) (snd r));
        match dtype_range dst with Some dr -> dr | None -> r
      end
    else value_range env e
  | Texpr.Binop (op, a, b) ->
    let ra = lint_expr ~push env a in
    let rb = lint_expr ~push env b in
    let dt = Texpr.dtype_of e in
    let combined =
      match op with
      | Texpr.Add -> Some (r_add ra rb)
      | Texpr.Sub -> Some (r_sub ra rb)
      | Texpr.Mul -> Some (r_mul ra rb)
      | _ -> None
    in
    (match combined with
     | Some r when Dtype.is_integer dt ->
       if fits_dtype r dt then r
       else begin
         if abs (fst r) < range_cap && abs (snd r) < range_cap then
           push
             (Diag.errorf Diag.Overflow
                "%s arithmetic wraps: result range [%d, %d] exceeds the dtype"
                (Dtype.to_string dt) (fst r) (snd r));
         match dtype_range dt with Some dr -> dr | None -> r
       end
     | _ -> value_range env e)
  | Texpr.Cmp (_, a, b) | Texpr.And (a, b) | Texpr.Or (a, b) ->
    ignore (lint_expr ~push env a);
    ignore (lint_expr ~push env b);
    (0, 1)
  | Texpr.Not a ->
    ignore (lint_expr ~push env a);
    (0, 1)
  | Texpr.Select (c, a, b) ->
    ignore (lint_expr ~push env c);
    r_hull (lint_expr ~push env a) (lint_expr ~push env b)

let lint_store ~diags ~loops env buf index value =
  let push d = diags := d :: !diags in
  ignore (lint_expr ~push env index);
  let accumulated =
    match value with
    | Texpr.Binop (Texpr.Add, Texpr.Load (b, ix), rest)
      when Buffer.equal b buf && Texpr.equal_structural ix index -> Some rest
    | Texpr.Binop (Texpr.Add, rest, Texpr.Load (b, ix))
      when Buffer.equal b buf && Texpr.equal_structural ix index -> Some rest
    | _ -> None
  in
  match accumulated with
  | Some rest ->
    let before = !diags in
    let r = lint_expr ~push env rest in
    let dt = buf.Buffer.dtype in
    (* only add the store-level diagnosis when the operand expression
       itself was clean, to avoid piling onto one root cause *)
    if !diags == before then begin
      let single = r_hull0 r in
      if not (fits_dtype single dt) then
        push
          (Diag.errorf Diag.Overflow
             "accumulation into %s (%s): a single update already reaches [%d, %d]"
             buf.Buffer.name (Dtype.to_string dt) (fst single) (snd single))
      else begin
        let revisits =
          List.fold_left
            (fun acc (v, extent) -> sat_mul acc (revisit_factor ~env_other:env v extent index))
            1 loops
        in
        let total = r_hull0 (r_scale revisits r) in
        if revisits > 1 && not (fits_dtype total dt) then
          push
            (Diag.warnf Diag.Overflow
               "accumulation into %s over %d iterations may reach [%d, %d], beyond %s"
               buf.Buffer.name revisits (fst total) (snd total) (Dtype.to_string dt))
      end
    end
  | None ->
    let r = lint_expr ~push env value in
    if Dtype.is_integer (Texpr.dtype_of value) && not (fits_dtype r buf.Buffer.dtype)
    then
      push
        (Diag.warnf Diag.Overflow
           "store to %s (%s): value range [%d, %d] exceeds the buffer dtype"
           buf.Buffer.name
           (Dtype.to_string buf.Buffer.dtype)
           (fst r) (snd r))

(* ------------------------------------------------------------------ *)
(* Top-level walk.                                                     *)
(* ------------------------------------------------------------------ *)

let default_intrin _ = None

let run ~intrin stmt =
  let diags = ref [] in
  let push d = diags := d :: !diags in
  let rec walk env loops (s : Stmt.t) =
    let lookup v =
      List.find_map (fun (w, r) -> if Var.equal v w then Some r else None) env
    in
    match s with
    | Stmt.Nop -> ()
    | Stmt.Seq stmts -> List.iter (walk env loops) stmts
    | Stmt.Store (buf, index, value) -> lint_store ~diags ~loops lookup buf index value
    | Stmt.If { cond; then_; else_; _ } ->
      ignore (lint_expr ~push lookup cond);
      walk env loops then_;
      Option.iter (walk env loops) else_
    | Stmt.Let (v, e, body) ->
      let r = lint_expr ~push lookup e in
      walk ((v, r) :: env) loops body
    | Stmt.Alloc (_, body) -> walk env loops body
    | Stmt.For { var; extent; kind; body } ->
      (match kind with
       | (Stmt.Parallel | Stmt.Vectorized | Stmt.Unrolled) when extent > 1 ->
         analyze_loop ~intrin ~outer_env:env ~push kind var extent body
       | _ -> ());
      walk
        ((var, (0, Stdlib.max 0 (extent - 1))) :: env)
        ((var, extent) :: loops)
        body
    | Stmt.Intrin_call { intrin = name; output; inputs = _ } ->
      (match intrin name with
       | Some meta -> check_intrin ~push ~loops ~env_other:lookup name meta output
       | None -> ())
  in
  walk [] [] stmt;
  (* identical conflicts can surface through several access pairs; keep
     the first occurrence of each distinct diagnostic *)
  let seen = Hashtbl.create 16 in
  List.rev !diags
  |> List.filter (fun (d : Diag.t) ->
       let key = (d.Diag.rule, d.Diag.severity, d.Diag.detail) in
       if Hashtbl.mem seen key then false
       else begin
         Hashtbl.add seen key ();
         true
       end)

let check_stmt ?(intrin = default_intrin) stmt = run ~intrin stmt

let check_func ?(intrin = default_intrin) (func : Lower.func) =
  run ~intrin func.Lower.fn_body
