(** Whole-graph tensor liveness against the executor's level-parallel
    schedule.

    A tensor is defined at its producer's schedule level
    ({!Unit_graph.Executor.schedule_levels}) and stays live through the
    level of its last consumer — inclusive on both ends, because nodes
    sharing a level run concurrently.  Two tensors whose ranges intersect
    may coexist in memory and therefore {!interfere}; the arena planner
    must keep them byte-disjoint.  The graph's output is pinned one level
    past the schedule's end: it escapes to the caller. *)

open Unit_codegen
open Unit_graph

type range = {
  lv_id : Graph.id;
  lv_name : string;
  lv_def : int;  (** producer's schedule level *)
  lv_last : int;  (** last level that reads the tensor (inclusive) *)
  lv_elems : int;  (** element count, from the declared shape *)
  lv_class : Ndarray.storage_class;
  lv_bytes : int;
      (** host bytes: [8 * lv_elems] — every element occupies one word of
          its class's backing array regardless of dtype wire width *)
  lv_intermediate : bool;  (** neither [Input] nor [Weight] *)
}

val word_bytes : int
(** Bytes per backing-array element (8 on every supported host). *)

val analyze : Graph.t -> range array
(** Indexed by node id ([Graph.arity g] entries). *)

val interfere : range -> range -> bool
(** Inclusive overlap of the two live ranges. *)

val peak_bytes : range array -> int
(** Max over schedule levels of the simultaneously live intermediate
    bytes — the floor any sound single-arena plan can reach. *)

val naive_bytes : range array -> int
(** Sum of all intermediate tensor bytes: the executor's historical
    peak, since per-op buffers are retained until the run completes. *)
