(** Static validation of tensor-IR programs.

    The tensor IR's restricted form (Section II-C.3) is what licenses the
    Inspector's and Rewriter's strong assumptions, so passes should be able
    to {e check} it rather than trust it.  [check_func] verifies:

    - {b canonical loops}: every loop variable is bound once, extents are
      positive;
    - {b scoping}: every variable read is bound by an enclosing loop or
      let; every buffer accessed is a function tensor or an enclosing
      [Alloc];
    - {b bounds}: every load/store index provably stays within its buffer,
      by interval analysis over the loop bounds (guard conditions of
      enclosing [If]s are used to refine variable ranges where they are
      simple [x < c] / [x <= c] comparisons — which covers the
      split-residue guards lowering emits);
    - {b tiles}: every [Intrin_call] names a registered instruction,
      supplies every input operand, references only that instruction's
      axes, and its tiles stay in bounds across the whole register
      window.

    Diagnostics are {!Diag.t} values (all with [Error] severity); the
    dependence analyzer in [Unit_analysis] reports through the same type.
    The interpreter would catch most of these dynamically; the validator
    catches them per-program instead of per-element, so it runs after
    every pass in tests and in [unitc compile]. *)

type violation = Diag.t

val check_func :
  ?intrin_axes:(string -> (string * int) list option) -> Lower.func -> violation list
(** Empty = valid.  Never raises.  [intrin_axes] resolves an instruction
    name to its axis (name, extent) list — pass a registry-backed lookup
    when the program contains [Intrin_call]s (the default knows no
    instructions, so every call is flagged); keeping the lookup a
    parameter keeps this library free of an ISA dependency. *)

val check_stmt :
  ?intrin_axes:(string -> (string * int) list option) ->
  params:Buffer.t list ->
  Stmt.t ->
  violation list
(** Validate a bare statement whose free buffers are [params]. *)

val pp_violation : Format.formatter -> violation -> unit

val refined_bounds :
  env:(Var.t -> (int * int) option) ->
  guards:(Texpr.t * int) list ->
  Texpr.t ->
  (int * int) option
(** {!Linear.bounds} refined by guard constraints: each [(e, upper)] in
    [guards] asserts [e < upper] in the current branch, and every subtree
    structurally equal to [e] is re-bounded accordingly before interval
    analysis.  Shared with the dependence analyzer so footprints under
    split-residue guards stay tight. *)
