(** Statements of the tensor IR.

    All loops are canonical (0-based, unit step).  Loop kinds carry the
    schedule annotations through to code generation and the machine model;
    [Tensorized] marks the nest that the replacement pass (Section III-C.2)
    rewrites into an {!Intrin_call}. *)

type for_kind =
  | Serial
  | Parallel  (** distributed across CPU threads *)
  | Unrolled
  | Vectorized  (** SIMD lanes; semantics identical to [Serial] *)
  | Gpu_block of int  (** blockIdx dimension 0..2 *)
  | Gpu_thread of int  (** threadIdx dimension 0..2 *)
  | Tensorized of Unit_dsl.Schedule.tensorize_info

(** A register-tile operand of a tensorized instruction: the memory it is
    loaded from (or stored to), as a base element index plus one stride per
    {e intrinsic loop variable}.  A stride of 0 along an intrinsic axis
    means the value is broadcast along that axis — exactly the operand
    preparation interface of Section III-C.2. *)
type tile = {
  tile_buf : Buffer.t;
  tile_base : Texpr.t;  (** element index when all intrinsic axes are 0 *)
  tile_strides : (string * int) list;
      (** intrinsic axis name -> element stride *)
}

type t =
  | Nop
  | Store of Buffer.t * Texpr.t * Texpr.t  (** buffer, index, value *)
  | For of { var : Var.t; extent : int; kind : for_kind; body : t }
  | If of { cond : Texpr.t; likely : bool; then_ : t; else_ : t option }
      (** [likely] marks split-residue guards inherited from TVM *)
  | Let of Var.t * Texpr.t * t
  | Alloc of Buffer.t * t  (** scoped scratch buffer *)
  | Seq of t list
  | Intrin_call of {
      intrin : string;
      output : tile;
      inputs : (string * tile) list;  (** intrinsic tensor name -> tile *)
    }

val seq : t list -> t
(** Flattens nested [Seq]s and drops [Nop]s; a single statement stays
    bare. *)

val for_ : Var.t -> extent:int -> ?kind:for_kind -> t -> t

val map_children : (t -> t) -> t -> t
(** Rebuild one level; the workhorse of the passes. *)

val iter_stmts : (t -> unit) -> t -> unit
(** Pre-order traversal over every statement. *)

val exists : (t -> bool) -> t -> bool
(** Pre-order search with a genuine early exit: traversal stops at the
    first statement satisfying the predicate. *)

val fold_stmts : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over every statement (the accumulator-threading
    counterpart of {!iter_stmts}). *)

val substitute : (Var.t * Texpr.t) list -> t -> t
(** Substitute variables in every contained expression (including tile
    bases). *)

val buffers_of : t -> Buffer.t list
(** Every buffer read, written or allocated; deduplicated. *)

val loop_depth : t -> int
(** Maximum loop nesting depth. *)

val count_stmts : t -> int

val pp : Format.formatter -> t -> unit
(** C-like indented form; the printer behind [unitc]'s IR dumps. *)

val to_string : t -> string
