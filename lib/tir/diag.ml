type rule =
  | Scope
  | Bounds
  | Canonical
  | Tile
  | Race
  | Carried_dep
  | Tensorize_footprint
  | Overflow
  | Store
  | Mem_plan
  | Emit
  | Isa_pack

type severity =
  | Error
  | Warning

type t = {
  rule : rule;
  severity : severity;
  detail : string;
}

let rule_id = function
  | Scope -> "scope"
  | Bounds -> "bounds"
  | Canonical -> "canonical"
  | Tile -> "tile"
  | Race -> "race"
  | Carried_dep -> "dep-carried"
  | Tensorize_footprint -> "tensorize-footprint"
  | Overflow -> "overflow"
  | Store -> "store"
  | Mem_plan -> "mem-plan"
  | Emit -> "emit"
  | Isa_pack -> "isa-pack"

let errorf rule fmt =
  Printf.ksprintf (fun detail -> { rule; severity = Error; detail }) fmt

let warnf rule fmt =
  Printf.ksprintf (fun detail -> { rule; severity = Warning; detail }) fmt

let is_error t = t.severity = Error
let errors ts = List.filter is_error ts
let warnings ts = List.filter (fun t -> not (is_error t)) ts

let pp fmt t =
  match t.severity with
  | Error -> Format.fprintf fmt "[%s] %s" (rule_id t.rule) t.detail
  | Warning -> Format.fprintf fmt "[%s] warning: %s" (rule_id t.rule) t.detail

let to_string t = Format.asprintf "%a" pp t
