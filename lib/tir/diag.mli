(** Unified diagnostics for the static checkers.

    One rule-ID type shared by {!Validate} (structural/bounds validation)
    and the dependence analyzer ([Unit_analysis.Analysis]), so every
    checker reports through the same channel and [unitc check] can print,
    count and gate on them uniformly. *)

type rule =
  | Scope  (** unbound variable / buffer not in scope *)
  | Bounds  (** load/store index may escape its buffer *)
  | Canonical  (** malformed loop structure (extent, rebinding) *)
  | Tile  (** malformed or out-of-window instruction tile *)
  | Race  (** parallel iterations touch overlapping elements *)
  | Carried_dep  (** vectorized/unrolled loop carries a non-reduction dep *)
  | Tensorize_footprint  (** instruction tile footprint / reduction shape *)
  | Overflow  (** narrowing cast or accumulator range overflow *)
  | Store  (** tuning-store record skipped (corrupt or stale schema) *)
  | Mem_plan
      (** arena memory plan rejected by the overlap checker (interfering
          live ranges share bytes, slot too small, tensor unplanned) *)
  | Emit
      (** native-emission engine degraded (no native [Dynlink] /
          [ocamlopt], unsupported construct) or an unknown engine name *)
  | Isa_pack
      (** declarative ISA-pack ([.uisa]) rejected: lexical/syntax error
          (position-tagged), elaboration failure (unknown dtype, shape or
          axis inconsistency, cost insanity), or a registry collision
          (same instruction name, different semantic digest) *)

type severity =
  | Error  (** the schedule is illegal; reject it *)
  | Warning  (** suspicious but not provably wrong; surface it *)

type t = {
  rule : rule;
  severity : severity;
  detail : string;
}

val rule_id : rule -> string
(** Stable short id: ["scope"], ["bounds"], ["canonical"], ["tile"],
    ["race"], ["dep-carried"], ["tensorize-footprint"], ["overflow"],
    ["store"], ["mem-plan"], ["emit"]. *)

val errorf : rule -> ('a, unit, string, t) format4 -> 'a
val warnf : rule -> ('a, unit, string, t) format4 -> 'a

val is_error : t -> bool
val errors : t list -> t list
val warnings : t list -> t list

val pp : Format.formatter -> t -> unit
(** Errors print as ["[rule] detail"] (the historical
    [Validate.pp_violation] format); warnings as
    ["[rule] warning: detail"]. *)

val to_string : t -> string
