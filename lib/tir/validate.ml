type violation = Diag.t

let pp_violation = Diag.pp

type ctx = {
  (* loop/let variables in scope with their inclusive value intervals *)
  vars : (Var.t * (int * int)) list;
  (* buffers in scope *)
  buffers : Buffer.t list;
  (* guard refinements: an expression known to be < bound in this branch *)
  guards : (Texpr.t * int) list;
  (* instruction axis extents, when known *)
  intrin_axes : string -> (string * int) list option;
}

let env_of ctx v =
  List.find_map
    (fun (w, range) -> if Var.equal v w then Some range else None)
    ctx.vars

(* Replace every subtree structurally equal to [target] by [replacement];
   used to apply guard refinements before interval analysis. *)
let rec replace_subtree ~target ~replacement e =
  if Texpr.equal_structural e target then replacement
  else
    match e with
    | Texpr.Imm _ | Texpr.Var _ -> e
    | Texpr.Load (b, ix) -> Texpr.load b (replace_subtree ~target ~replacement ix)
    | Texpr.Binop (op, a, b2) ->
      Texpr.binop op
        (replace_subtree ~target ~replacement a)
        (replace_subtree ~target ~replacement b2)
    | Texpr.Cmp (c, a, b2) ->
      Texpr.cmp c
        (replace_subtree ~target ~replacement a)
        (replace_subtree ~target ~replacement b2)
    | Texpr.And (a, b2) ->
      Texpr.and_ (replace_subtree ~target ~replacement a)
        (replace_subtree ~target ~replacement b2)
    | Texpr.Or (a, b2) ->
      Texpr.or_ (replace_subtree ~target ~replacement a)
        (replace_subtree ~target ~replacement b2)
    | Texpr.Not a -> Texpr.not_ (replace_subtree ~target ~replacement a)
    | Texpr.Cast (dt, a) -> Texpr.cast dt (replace_subtree ~target ~replacement a)
    | Texpr.Select (c, a, b2) ->
      Texpr.select
        (replace_subtree ~target ~replacement c)
        (replace_subtree ~target ~replacement a)
        (replace_subtree ~target ~replacement b2)

(* Interval of [e], refining with the branch's guard constraints: each
   guarded subexpression is replaced by a fresh variable whose range is
   the guard's bound intersected with the subexpression's own range. *)
let refined_bounds ~env ~guards e =
  let lookup extra v =
    match List.find_map (fun (w, r) -> if Var.equal v w then Some r else None) extra with
    | Some r -> Some r
    | None -> env v
  in
  let expr, extra =
    List.fold_left
      (fun (expr, extra) (guarded, upper) ->
        let own = Linear.bounds ~env:(lookup extra) guarded in
        let lo = match own with Some (l, _) -> Stdlib.max 0 l | None -> 0 in
        let hi =
          match own with
          | Some (_, h) -> Stdlib.min h (upper - 1)
          | None -> upper - 1
        in
        let placeholder = Var.create "guard_bound" in
        ( replace_subtree ~target:guarded ~replacement:(Texpr.var placeholder) expr,
          (placeholder, (lo, hi)) :: extra ))
      (e, []) guards
  in
  Linear.bounds ~env:(lookup extra) expr

let bounds_with_guards ctx e =
  refined_bounds ~env:(fun v -> env_of ctx v) ~guards:ctx.guards e

let check_access ctx ~what (buf : Buffer.t) index violations =
  if not (List.exists (Buffer.equal buf) ctx.buffers) then
    violations :=
      Diag.errorf Diag.Scope "%s of %s: buffer not in scope" what buf.Buffer.name
      :: !violations
  else begin
    (* every variable in the index must be bound *)
    List.iter
      (fun v ->
        if env_of ctx v = None then
          violations :=
            Diag.errorf Diag.Scope "%s of %s: unbound variable %s" what
              buf.Buffer.name v.Var.name
            :: !violations)
      (Texpr.vars_of index);
    match bounds_with_guards ctx index with
    | None ->
      violations :=
        Diag.errorf Diag.Bounds "%s of %s: index not analyzable" what buf.Buffer.name
        :: !violations
    | Some (lo, hi) ->
      if lo < 0 || hi >= buf.Buffer.size then
        violations :=
          Diag.errorf Diag.Bounds "%s of %s: index range [%d, %d] outside [0, %d)"
            what buf.Buffer.name lo hi buf.Buffer.size
          :: !violations
  end

let check_expr ctx violations (e : Texpr.t) =
  List.iter
    (fun v ->
      if env_of ctx v = None then
        violations :=
          Diag.errorf Diag.Scope "unbound variable %s" v.Var.name :: !violations)
    (Texpr.vars_of e);
  List.iter (fun (buf, index) -> check_access ctx ~what:"load" buf index violations)
    (Texpr.loads_of e)

let check_tile ctx violations ~intrin_name ~axes (tile : Stmt.tile) =
  List.iter
    (fun (axis, _) ->
      if not (List.mem_assoc axis axes) then
        violations :=
          Diag.errorf Diag.Tile "tile on %s: axis %s is not an axis of %s"
            tile.Stmt.tile_buf.Buffer.name axis intrin_name
          :: !violations)
    tile.Stmt.tile_strides;
  (* the whole register window must stay inside the buffer *)
  match bounds_with_guards ctx tile.Stmt.tile_base with
  | None ->
    violations :=
      Diag.errorf Diag.Tile "tile on %s: base not analyzable"
        tile.Stmt.tile_buf.Buffer.name
      :: !violations
  | Some (lo, hi) ->
    let span =
      List.fold_left
        (fun acc (axis, stride) ->
          let extent = try List.assoc axis axes with Not_found -> 1 in
          let step = stride * (extent - 1) in
          (Stdlib.min (fst acc) (fst acc + Stdlib.min 0 step),
           snd acc + Stdlib.max 0 step))
        (0, 0) tile.Stmt.tile_strides
    in
    let lo = lo + fst span and hi = hi + snd span in
    if lo < 0 || hi >= tile.Stmt.tile_buf.Buffer.size then
      violations :=
        Diag.errorf Diag.Tile "tile on %s: window [%d, %d] outside [0, %d)"
          tile.Stmt.tile_buf.Buffer.name lo hi tile.Stmt.tile_buf.Buffer.size
        :: !violations

let rec check ctx violations (s : Stmt.t) =
  match s with
  | Stmt.Nop -> ()
  | Stmt.Seq stmts -> List.iter (check ctx violations) stmts
  | Stmt.Store (buf, index, value) ->
    check_expr ctx violations value;
    check_access ctx ~what:"store" buf index violations
  | Stmt.For { var; extent; body; _ } ->
    if extent <= 0 then
      violations :=
        Diag.errorf Diag.Canonical "loop %s has extent %d" var.Var.name extent
        :: !violations;
    if env_of ctx var <> None then
      violations :=
        Diag.errorf Diag.Canonical "loop variable %s rebound" var.Var.name
        :: !violations;
    check { ctx with vars = (var, (0, Stdlib.max 0 (extent - 1))) :: ctx.vars } violations body
  | Stmt.If { cond; then_; else_; _ } ->
    check_expr ctx violations cond;
    let refined =
      match cond with
      | Texpr.Cmp (Texpr.Lt, e, bound) ->
        (match Texpr.as_const_int bound with
         | Some c -> { ctx with guards = (e, c) :: ctx.guards }
         | None -> ctx)
      | Texpr.Cmp (Texpr.Le, e, bound) ->
        (match Texpr.as_const_int bound with
         | Some c -> { ctx with guards = (e, c + 1) :: ctx.guards }
         | None -> ctx)
      | _ -> ctx
    in
    check refined violations then_;
    Option.iter (check ctx violations) else_
  | Stmt.Let (v, e, body) ->
    check_expr ctx violations e;
    let range =
      match bounds_with_guards ctx e with Some r -> r | None -> (min_int / 2, max_int / 2)
    in
    check { ctx with vars = (v, range) :: ctx.vars } violations body
  | Stmt.Alloc (buf, body) -> check { ctx with buffers = buf :: ctx.buffers } violations body
  | Stmt.Intrin_call { intrin; output; inputs } ->
    (match ctx.intrin_axes intrin with
     | None ->
       violations :=
         Diag.errorf Diag.Tile "unknown instruction %s" intrin :: !violations
     | Some axes ->
       List.iter
         (fun tile ->
           if not (List.exists (Buffer.equal tile.Stmt.tile_buf) ctx.buffers) then
             violations :=
               Diag.errorf Diag.Scope "tile buffer %s not in scope"
                 tile.Stmt.tile_buf.Buffer.name
               :: !violations
           else check_tile ctx violations ~intrin_name:intrin ~axes tile)
         (output :: List.map snd inputs))

let default_intrin_axes _ = None

let run ~params ~intrin_axes stmt =
  let violations = ref [] in
  check { vars = []; buffers = params; guards = []; intrin_axes } violations stmt;
  List.rev !violations

let check_stmt ?(intrin_axes = default_intrin_axes) ~params stmt =
  run ~params ~intrin_axes stmt

let check_func ?(intrin_axes = default_intrin_axes) (func : Lower.func) =
  run ~params:(List.map snd func.Lower.fn_tensors) ~intrin_axes func.Lower.fn_body
