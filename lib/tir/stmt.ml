type for_kind =
  | Serial
  | Parallel
  | Unrolled
  | Vectorized
  | Gpu_block of int
  | Gpu_thread of int
  | Tensorized of Unit_dsl.Schedule.tensorize_info

type tile = {
  tile_buf : Buffer.t;
  tile_base : Texpr.t;
  tile_strides : (string * int) list;
}

type t =
  | Nop
  | Store of Buffer.t * Texpr.t * Texpr.t
  | For of { var : Var.t; extent : int; kind : for_kind; body : t }
  | If of { cond : Texpr.t; likely : bool; then_ : t; else_ : t option }
  | Let of Var.t * Texpr.t * t
  | Alloc of Buffer.t * t
  | Seq of t list
  | Intrin_call of {
      intrin : string;
      output : tile;
      inputs : (string * tile) list;
    }

let seq stmts =
  let flattened =
    List.concat_map (function Seq inner -> inner | Nop -> [] | s -> [ s ]) stmts
  in
  match flattened with [] -> Nop | [ single ] -> single | many -> Seq many

let for_ var ~extent ?(kind = Serial) body = For { var; extent; kind; body }

let map_children f = function
  | (Nop | Store _ | Intrin_call _) as leaf -> leaf
  | For r -> For { r with body = f r.body }
  | If r -> If { r with then_ = f r.then_; else_ = Option.map f r.else_ }
  | Let (v, e, body) -> Let (v, e, f body)
  | Alloc (b, body) -> Alloc (b, f body)
  | Seq stmts -> Seq (List.map f stmts)

let rec iter_stmts f t =
  f t;
  match t with
  | Nop | Store _ | Intrin_call _ -> ()
  | For { body; _ } -> iter_stmts f body
  | If { then_; else_; _ } ->
    iter_stmts f then_;
    Option.iter (iter_stmts f) else_
  | Let (_, _, body) | Alloc (_, body) -> iter_stmts f body
  | Seq stmts -> List.iter (iter_stmts f) stmts

let rec exists pred t =
  pred t
  ||
  match t with
  | Nop | Store _ | Intrin_call _ -> false
  | For { body; _ } -> exists pred body
  | If { then_; else_; _ } ->
    exists pred then_
    || (match else_ with Some e -> exists pred e | None -> false)
  | Let (_, _, body) | Alloc (_, body) -> exists pred body
  | Seq stmts -> List.exists (exists pred) stmts

let rec fold_stmts f acc t =
  let acc = f acc t in
  match t with
  | Nop | Store _ | Intrin_call _ -> acc
  | For { body; _ } -> fold_stmts f acc body
  | If { then_; else_; _ } ->
    let acc = fold_stmts f acc then_ in
    (match else_ with Some e -> fold_stmts f acc e | None -> acc)
  | Let (_, _, body) | Alloc (_, body) -> fold_stmts f acc body
  | Seq stmts -> List.fold_left (fold_stmts f) acc stmts

let substitute_tile bindings tile =
  { tile with tile_base = Texpr.substitute bindings tile.tile_base }

let rec substitute bindings t =
  let expr e = Texpr.substitute bindings e in
  match t with
  | Nop -> Nop
  | Store (b, ix, v) -> Store (b, expr ix, expr v)
  | For r ->
    let bindings = List.filter (fun (v, _) -> not (Var.equal v r.var)) bindings in
    For { r with body = substitute bindings r.body }
  | If r ->
    If
      { r with
        cond = expr r.cond;
        then_ = substitute bindings r.then_;
        else_ = Option.map (substitute bindings) r.else_
      }
  | Let (v, e, body) ->
    let inner = List.filter (fun (w, _) -> not (Var.equal v w)) bindings in
    Let (v, expr e, substitute inner body)
  | Alloc (b, body) -> Alloc (b, substitute bindings body)
  | Seq stmts -> Seq (List.map (substitute bindings) stmts)
  | Intrin_call r ->
    Intrin_call
      { r with
        output = substitute_tile bindings r.output;
        inputs = List.map (fun (n, tl) -> (n, substitute_tile bindings tl)) r.inputs
      }

let buffers_of t =
  let acc = ref [] in
  (* membership is O(1) via name-keyed buckets; names are not unique
     (ids are), so each bucket still dedups with [Buffer.equal] *)
  let seen : (string, Buffer.t list) Hashtbl.t = Hashtbl.create 32 in
  let remember b =
    let bucket =
      match Hashtbl.find_opt seen b.Buffer.name with Some bs -> bs | None -> []
    in
    if not (List.exists (Buffer.equal b) bucket) then begin
      Hashtbl.replace seen b.Buffer.name (b :: bucket);
      acc := b :: !acc
    end
  in
  let remember_expr e = List.iter (fun (b, _) -> remember b) (Texpr.loads_of e) in
  iter_stmts
    (fun s ->
      match s with
      | Store (b, ix, v) ->
        remember b;
        remember_expr ix;
        remember_expr v
      | Alloc (b, _) -> remember b
      | Let (_, e, _) -> remember_expr e
      | If { cond; _ } -> remember_expr cond
      | Intrin_call { output; inputs; _ } ->
        remember output.tile_buf;
        remember_expr output.tile_base;
        List.iter
          (fun (_, tl) ->
            remember tl.tile_buf;
            remember_expr tl.tile_base)
          inputs
      | Nop | For _ | Seq _ -> ())
    t;
  List.rev !acc

let rec loop_depth = function
  | Nop | Store _ | Intrin_call _ -> 0
  | For { body; _ } -> 1 + loop_depth body
  | If { then_; else_; _ } ->
    Stdlib.max (loop_depth then_)
      (match else_ with Some e -> loop_depth e | None -> 0)
  | Let (_, _, body) | Alloc (_, body) -> loop_depth body
  | Seq stmts -> List.fold_left (fun acc s -> Stdlib.max acc (loop_depth s)) 0 stmts

let count_stmts t =
  let n = ref 0 in
  iter_stmts (fun _ -> incr n) t;
  !n

let kind_to_string = function
  | Serial -> ""
  | Parallel -> " /*parallel*/"
  | Unrolled -> " /*unroll*/"
  | Vectorized -> " /*vectorize*/"
  | Gpu_block d -> Printf.sprintf " /*blockIdx.%c*/" "xyz".[d]
  | Gpu_thread d -> Printf.sprintf " /*threadIdx.%c*/" "xyz".[d]
  | Tensorized info ->
    Printf.sprintf " /*tensorize %s*/" info.Unit_dsl.Schedule.intrin_name

let pp_tile fmt tile =
  Format.fprintf fmt "%s@[%a" tile.tile_buf.Buffer.name Texpr.pp tile.tile_base;
  List.iter (fun (ax, st) -> Format.fprintf fmt " +%s*%d" ax st) tile.tile_strides;
  Format.fprintf fmt "@]"

let rec pp fmt = function
  | Nop -> Format.pp_print_string fmt "nop;"
  | Store (b, ix, v) ->
    Format.fprintf fmt "@[<h>%s[%a] = %a;@]" b.Buffer.name Texpr.pp ix Texpr.pp v
  | For { var; extent; kind; body } ->
    Format.fprintf fmt "@[<v 2>for (%a = 0; %a < %d; ++%a)%s {@,%a@]@,}" Var.pp var
      Var.pp var extent Var.pp var (kind_to_string kind) pp body
  | If { cond; likely; then_; else_ } ->
    Format.fprintf fmt "@[<v 2>if (%s%a%s) {@,%a@]@,}"
      (if likely then "likely(" else "")
      Texpr.pp cond
      (if likely then ")" else "")
      pp then_;
    (match else_ with
     | Some e -> Format.fprintf fmt "@[<v 2> else {@,%a@]@,}" pp e
     | None -> ())
  | Let (v, e, body) ->
    Format.fprintf fmt "@[<v>let %a = %a;@,%a@]" Var.pp v Texpr.pp e pp body
  | Alloc (b, body) -> Format.fprintf fmt "@[<v>alloc %a;@,%a@]" Buffer.pp b pp body
  | Seq stmts ->
    Format.fprintf fmt "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp)
      stmts
  | Intrin_call { intrin; output; inputs } ->
    Format.fprintf fmt "@[<h>%a <- %s(%a);@]" pp_tile output intrin
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
         (fun f (name, tl) -> Format.fprintf f "%s=%a" name pp_tile tl))
      inputs

let to_string t = Format.asprintf "%a" pp t
