(** Runtime scalar values for the reference interpreters.

    A value is a payload (64-bit integer or double) together with the
    {!Dtype.t} it inhabits; constructors normalize the payload into that
    type (integers wrap to the type's width, fp16/fp32 payloads are rounded
    to their precision) so a [Value.t] is always canonical. *)

type t = private
  | Int of Dtype.t * int64
  | Float of Dtype.t * float

val of_int64 : Dtype.t -> int64 -> t
(** Wraps into the integer type's range.
    @raise Invalid_argument if the dtype is a float type. *)

val of_int : Dtype.t -> int -> t

val of_float : Dtype.t -> float -> t
(** Rounds to the float type's precision (fp16 via {!F16}).
    @raise Invalid_argument if the dtype is an integer type. *)

val zero : Dtype.t -> t
val one : Dtype.t -> t

val dtype : t -> Dtype.t

val to_int64 : t -> int64
(** Integer payload; floats are truncated toward zero.  Out-of-range floats
    saturate to the destination's bounds like hardware conversions. *)

val to_float : t -> float

val cast : Dtype.t -> t -> t
(** C-style conversion: int->int wraps, float->int truncates toward zero
    (saturating at the bounds), int->float and float->float round. *)

val cast_saturating : Dtype.t -> t -> t
(** Like {!cast} but int->int clamps to the destination range — the
    behaviour of requantization instructions. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

val rem : t -> t -> t
(** Remainder; integer remainder by zero yields zero (like {!div}). *)

val min : t -> t -> t
val max : t -> t -> t

val neg : t -> t

val equal : t -> t -> bool
(** Structural equality; NaN equals NaN so test assertions are stable. *)

val compare_num : t -> t -> int
(** Numeric comparison across representations. *)

val shift_right_rounding : t -> int -> t
(** Arithmetic right shift with round-to-nearest (away from zero on ties),
    the fixed-point requantization primitive.
    @raise Invalid_argument on float values. *)

(** {2 Raw (unboxed) helpers}

    Native-[int]/[float] counterparts of the canonicalization rules above,
    for code (the closure-compiled interpreter, the unboxed ndarrays) that
    runs arithmetic without boxing a [t] per element.  Integer helpers are
    only valid for dtypes whose value range fits a native int
    (bits <= 32); [I64] must keep using the boxed path. *)

val wrap_native : Dtype.t -> int -> int
(** [wrap_native dt x] wraps [x] into [dt]'s range exactly like the [t]
    constructors do (two's-complement for signed, masking for unsigned,
    0/1 for bool).  Native-int overflow during the arithmetic that produced
    [x] is harmless: it preserves the low bits being masked.
    @raise Invalid_argument for [I64] (and any dtype with >= 63 bits). *)

val round_float : Dtype.t -> float -> float
(** Rounds to the float dtype's precision (identity for [F64]).
    @raise Invalid_argument for integer dtypes. *)

val trunc_int64_of_float : float -> int64
(** Float-to-integer conversion with {!to_int64}'s semantics: truncate
    toward zero, saturate at the int64 bounds, NaN to zero. *)

val trunc_int_of_float : float -> int
(** [Int64.to_int (trunc_int64_of_float f)] — the conversion the
    interpreters use when an index expression evaluates to a float. *)

val sat_int_of_float : Dtype.t -> float -> int
(** Float-to-int cast (truncate toward zero, saturate at the dtype bounds,
    NaN to zero) as a native int; matches {!cast} to an integer dtype.
    Only for dtypes whose bounds fit a native int (bits <= 32). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
