type t = int

let of_bits b = b land 0xffff
let to_bits t = t

let zero = 0x0000
let one = 0x3f80
let infinity = 0x7f80
let neg_infinity = 0xff80
let nan = 0x7fc0

(* Widening bf16 -> fp64 is exact: a bfloat16 is just the high half of the
   equal-exponent-range float32, so shifting the pattern left 16 bits gives
   the float32 (hence float64) value directly. *)
let to_float t = Int32.float_of_bits (Int32.shift_left (Int32.of_int t) 16)

(* Narrowing fp64 -> bf16 with round-to-nearest-even.  We go through the
   float32 bit pattern first (Int32.bits_of_float rounds correctly to
   single precision; a double halfway between two bf16 values is never
   halfway between two f32 values, so double rounding is harmless here
   because f32 keeps 16 extra mantissa bits) and then round away the low
   16 bits with the classic [bits + 0x7fff + lsb] trick. *)
let of_float x =
  if Float.is_nan x then nan
  else begin
    let b = Int32.bits_of_float x in
    let rounded =
      Int32.add b
        (Int32.add 0x7fffl (Int32.logand (Int32.shift_right_logical b 16) 1l))
    in
    Int32.to_int (Int32.shift_right_logical rounded 16) land 0xffff
  end

let round_float x = to_float (of_float x)

let is_nan t =
  let exp = (t lsr 7) land 0xff in
  let mant = t land 0x7f in
  exp = 0xff && mant <> 0

let equal a b = (a : int) = b || (is_nan a && is_nan b)
