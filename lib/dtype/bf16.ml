type t = int

let of_bits b = b land 0xffff
let to_bits t = t

let zero = 0x0000
let one = 0x3f80
let infinity = 0x7f80
let neg_infinity = 0xff80
let nan = 0x7fc0

(* Widening bf16 -> fp64 is exact: a bfloat16 is just the high half of the
   equal-exponent-range float32, so shifting the pattern left 16 bits gives
   the float32 (hence float64) value directly. *)
let to_float t = Int32.float_of_bits (Int32.shift_left (Int32.of_int t) 16)

(* Narrowing fp64 -> bf16 with round-to-nearest-even with respect to the
   original double.  We go through the float32 bit pattern first
   (Int32.bits_of_float rounds correctly to single precision) and round
   away the low 16 bits with the classic [bits + 0x7fff + lsb] trick.
   Double rounding can only go wrong when the f64 -> f32 step lands
   exactly on a bf16 tie pattern (low 16 bits 0x8000): a double slightly
   past the tie point collapses onto it and ties-to-even would then
   round the wrong way.  A bf16 tie point itself is exactly
   representable in f32, so when the f32 result is NOT the tie pattern
   the plain trick is exact; when it IS, we break the tie with the bits
   the f64 -> f32 step discarded. *)
let of_float x =
  if Float.is_nan x then nan
  else begin
    let b = Int32.bits_of_float x in
    if Int32.logand b 0xffffl <> 0x8000l then
      let rounded =
        Int32.add b
          (Int32.add 0x7fffl (Int32.logand (Int32.shift_right_logical b 16) 1l))
      in
      Int32.to_int (Int32.shift_right_logical rounded 16) land 0xffff
    else begin
      let hi = Int32.to_int (Int32.shift_right_logical b 16) land 0xffff in
      let f32v = Int32.float_of_bits b in
      if Float.equal f32v x then
        (* genuine tie: round to even mantissa *)
        if hi land 1 = 1 then (hi + 1) land 0xffff else hi
      else if Float.abs x > Float.abs f32v then
        (* the double was past the tie point: round up in magnitude *)
        (hi + 1) land 0xffff
      else hi
    end
  end

let round_float x = to_float (of_float x)

let is_nan t =
  let exp = (t lsr 7) land 0xff in
  let mant = t land 0x7f in
  exp = 0xff && mant <> 0

let equal a b = (a : int) = b || (is_nan a && is_nan b)
