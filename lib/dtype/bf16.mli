(** Software emulation of bfloat16 (brain floating point).

    Values are represented by their 16-bit pattern stored in an [int].  A
    bfloat16 is the top half of an IEEE-754 binary32: same 8-bit exponent,
    7-bit mantissa.  Conversions use round-to-nearest-even, matching the
    AVX512-BF16 / AMX-BF16 / TPU convert units, so mixed-precision numerics
    in the interpreter behave like the tensorized instructions they stand
    in for. *)

type t = private int
(** A bfloat16, as its 16-bit pattern. *)

val of_bits : int -> t
(** [of_bits b] reinterprets the low 16 bits of [b] as a bf16 value. *)

val to_bits : t -> int

val of_float : float -> t
(** Convert from double precision with round-to-nearest-even, overflow to
    infinity, and preservation of NaN. *)

val to_float : t -> float
(** Exact widening conversion (shift the pattern into the f32 high half). *)

val round_float : float -> float
(** [round_float x] is [to_float (of_float x)]: the nearest representable
    bf16 value of [x], as a double.  The primitive used by the interpreter
    and the emitted-code prelude to emulate bf16 arithmetic. *)

val zero : t
val one : t
val neg_infinity : t
val infinity : t
val nan : t

val is_nan : t -> bool
val equal : t -> t -> bool
