type t =
  | Bool
  | U8
  | I8
  | I16
  | I32
  | I64
  | F16
  | Bf16
  | F32
  | F64

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (t : t) = Hashtbl.hash t

let bits = function
  | Bool -> 8
  | U8 | I8 -> 8
  | I16 | F16 | Bf16 -> 16
  | I32 | F32 -> 32
  | I64 | F64 -> 64

let bytes t = bits t / 8

let is_integer = function
  | Bool | U8 | I8 | I16 | I32 | I64 -> true
  | F16 | Bf16 | F32 | F64 -> false

let is_float t = not (is_integer t)

let is_signed = function
  | Bool | U8 -> false
  | I8 | I16 | I32 | I64 -> true
  | F16 | Bf16 | F32 | F64 -> true

let min_int_value = function
  | Bool -> 0L
  | U8 -> 0L
  | I8 -> -128L
  | I16 -> -32768L
  | I32 -> Int64.of_int32 Int32.min_int
  | I64 -> Int64.min_int
  | (F16 | Bf16 | F32 | F64) as t ->
    invalid_arg (Printf.sprintf "Dtype.min_int_value: float type %d-bit" (bits t))

let max_int_value = function
  | Bool -> 1L
  | U8 -> 255L
  | I8 -> 127L
  | I16 -> 32767L
  | I32 -> Int64.of_int32 Int32.max_int
  | I64 -> Int64.max_int
  | (F16 | Bf16 | F32 | F64) as t ->
    invalid_arg (Printf.sprintf "Dtype.max_int_value: float type %d-bit" (bits t))

let to_string = function
  | Bool -> "bool"
  | U8 -> "u8"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F16 -> "fp16"
  | Bf16 -> "bf16"
  | F32 -> "fp32"
  | F64 -> "fp64"

let of_string = function
  | "bool" -> Some Bool
  | "u8" | "uint8" -> Some U8
  | "i8" | "int8" -> Some I8
  | "i16" | "int16" -> Some I16
  | "i32" | "int32" -> Some I32
  | "i64" | "int64" -> Some I64
  | "fp16" | "f16" | "half" -> Some F16
  | "bf16" | "bfloat16" -> Some Bf16
  | "fp32" | "f32" | "float" -> Some F32
  | "fp64" | "f64" | "double" -> Some F64
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)

let all = [ Bool; U8; I8; I16; F16; Bf16; I32; F32; I64; F64 ]

let can_cast_losslessly ~src ~dst =
  match src, dst with
  | a, b when equal a b -> true
  | Bool, _ -> true
  | U8, (I16 | I32 | I64 | F16 | Bf16 | F32 | F64) -> true
  | I8, (I16 | I32 | I64 | F16 | Bf16 | F32 | F64) -> true
  | I16, (I32 | I64 | F32 | F64) -> true
  | I32, (I64 | F64) -> true
  | F16, (F32 | F64) -> true
  | Bf16, (F32 | F64) -> true
  | F32, F64 -> true
  | _, _ -> false

let promote a b =
  if equal a b then Some a
  else if can_cast_losslessly ~src:a ~dst:b then Some b
  else if can_cast_losslessly ~src:b ~dst:a then Some a
  else
    (* mixed signedness of the same width: widen to the next signed type *)
    match a, b with
    | U8, I8 | I8, U8 -> Some I16
    | _ -> None
