(** Scalar data types of the tensor DSL and IRs.

    UNIT's whole point is mixed precision: tensorized instructions multiply
    narrow operands (u8/i8/f16) and accumulate into wide ones (i32/f32).
    This module is the single source of truth for widths, signedness, value
    ranges and legal promotions; every IR level reuses it. *)

type t =
  | Bool
  | U8
  | I8
  | I16
  | I32
  | I64
  | F16
  | Bf16
  | F32
  | F64

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val bits : t -> int
(** Storage width in bits ([Bool] is 8). *)

val bytes : t -> int

val is_integer : t -> bool
(** True for [Bool] and all fixed-point types. *)

val is_float : t -> bool

val is_signed : t -> bool
(** Floats are signed; [Bool] and [U8] are not. *)

val min_int_value : t -> int64
(** Smallest representable value of an integer type.
    @raise Invalid_argument on float types. *)

val max_int_value : t -> int64
(** Largest representable value of an integer type.
    @raise Invalid_argument on float types. *)

val to_string : t -> string
(** Short conventional name: ["u8"], ["i32"], ["fp16"], ["bf16"], ... *)

val of_string : string -> t option
(** Inverse of {!to_string}; also accepts ["f16"]/["f32"]/["f64"]
    spellings. *)

val pp : Format.formatter -> t -> unit

val all : t list
(** Every data type, ordered by width then signedness; handy for
    property-test generators. *)

val promote : t -> t -> t option
(** [promote a b] is the narrowest type both [a] and [b] losslessly convert
    to, if one exists within this type universe.  Used by expression
    builders to check well-typedness of mixed arithmetic. *)

val can_cast_losslessly : src:t -> dst:t -> bool
(** Whether every value of [src] is exactly representable in [dst] (e.g.
    u8 -> i32 yes, i32 -> f32 no since f32 has a 24-bit mantissa). *)
