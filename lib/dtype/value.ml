type t =
  | Int of Dtype.t * int64
  | Float of Dtype.t * float

(* Wrap [x] into the two's-complement (or unsigned) range of [dt]. *)
let wrap dt x =
  let b = Dtype.bits dt in
  if b >= 64 then x
  else begin
    let masked = Int64.logand x (Int64.sub (Int64.shift_left 1L b) 1L) in
    if Dtype.is_signed dt then begin
      let sign_bit = Int64.shift_left 1L (b - 1) in
      if Int64.logand masked sign_bit <> 0L then
        Int64.sub masked (Int64.shift_left 1L b)
      else masked
    end
    else if Dtype.equal dt Dtype.Bool then (if masked = 0L then 0L else 1L)
    else masked
  end

let round_to_precision dt x =
  match dt with
  | Dtype.F16 -> F16.round_float x
  | Dtype.Bf16 -> Bf16.round_float x
  | Dtype.F32 -> Int32.float_of_bits (Int32.bits_of_float x)
  | Dtype.F64 -> x
  | _ -> invalid_arg "Value.round_to_precision: integer dtype"

let of_int64 dt x =
  if Dtype.is_float dt then invalid_arg "Value.of_int64: float dtype"
  else Int (dt, wrap dt x)

let of_int dt x = of_int64 dt (Int64.of_int x)

let of_float dt x =
  if Dtype.is_integer dt then invalid_arg "Value.of_float: integer dtype"
  else Float (dt, round_to_precision dt x)

let zero dt = if Dtype.is_float dt then of_float dt 0.0 else of_int64 dt 0L
let one dt = if Dtype.is_float dt then of_float dt 1.0 else of_int64 dt 1L

let dtype = function Int (dt, _) -> dt | Float (dt, _) -> dt

let clamp_int64 dt x =
  let lo = Dtype.min_int_value dt and hi = Dtype.max_int_value dt in
  if Int64.compare x lo < 0 then lo
  else if Int64.compare x hi > 0 then hi
  else x

let to_int64 = function
  | Int (_, x) -> x
  | Float (_, f) ->
    if Float.is_nan f then 0L
    else if f >= Int64.to_float Int64.max_int then Int64.max_int
    else if f <= Int64.to_float Int64.min_int then Int64.min_int
    else Int64.of_float f (* truncates toward zero *)

let to_float = function Int (_, x) -> Int64.to_float x | Float (_, f) -> f

let float_to_int_sat dt f =
  if Float.is_nan f then 0L
  else begin
    let lo = Dtype.min_int_value dt and hi = Dtype.max_int_value dt in
    if f <= Int64.to_float lo then lo
    else if f >= Int64.to_float hi then hi
    else Int64.of_float f
  end

let cast dst v =
  match v, Dtype.is_float dst with
  | Int (_, x), false -> Int (dst, wrap dst x)
  | Int (_, x), true -> Float (dst, round_to_precision dst (Int64.to_float x))
  | Float (_, f), false -> Int (dst, float_to_int_sat dst f)
  | Float (_, f), true -> Float (dst, round_to_precision dst f)

let cast_saturating dst v =
  match v, Dtype.is_float dst with
  | Int (_, x), false -> Int (dst, clamp_int64 dst x)
  | _ -> cast dst v

(* Binary arithmetic: both operands must share a dtype; the expression
   builders guarantee this, so a mismatch is a bug in a lowering pass. *)
let lift name int_op float_op a b =
  match a, b with
  | Int (da, x), Int (db, y) when Dtype.equal da db -> Int (da, wrap da (int_op x y))
  | Float (da, x), Float (db, y) when Dtype.equal da db ->
    Float (da, round_to_precision da (float_op x y))
  | _ ->
    invalid_arg
      (Printf.sprintf "Value.%s: dtype mismatch (%s vs %s)" name
         (Dtype.to_string (dtype a))
         (Dtype.to_string (dtype b)))

let add a b = lift "add" Int64.add ( +. ) a b
let sub a b = lift "sub" Int64.sub ( -. ) a b
let mul a b = lift "mul" Int64.mul ( *. ) a b

let div a b =
  let int_div x y = if y = 0L then 0L else Int64.div x y in
  lift "div" int_div ( /. ) a b

let rem a b =
  let int_rem x y = if y = 0L then 0L else Int64.rem x y in
  lift "rem" int_rem Float.rem a b

let min a b = lift "min" Stdlib.min Float.min a b
let max a b = lift "max" Stdlib.max Float.max a b

let neg = function
  | Int (dt, x) -> Int (dt, wrap dt (Int64.neg x))
  | Float (dt, f) -> Float (dt, -.f)

let equal a b =
  match a, b with
  | Int (da, x), Int (db, y) -> Dtype.equal da db && x = y
  | Float (da, x), Float (db, y) ->
    Dtype.equal da db && (x = y || (Float.is_nan x && Float.is_nan y))
  | Int _, Float _ | Float _, Int _ -> false

let compare_num a b =
  match a, b with
  | Int (_, x), Int (_, y) -> Int64.compare x y
  | _ -> Float.compare (to_float a) (to_float b)

let shift_right_rounding v n =
  match v with
  | Float _ -> invalid_arg "Value.shift_right_rounding: float value"
  | Int (dt, x) ->
    if n <= 0 then Int (dt, x)
    else begin
      let shifted = Int64.shift_right x n in
      let rem = Int64.logand x (Int64.sub (Int64.shift_left 1L n) 1L) in
      let half = Int64.shift_left 1L (n - 1) in
      let rounded =
        if Int64.compare rem half >= 0 then Int64.add shifted 1L else shifted
      in
      Int (dt, wrap dt rounded)
    end

(* ---------- raw (unboxed) helpers for the compiled interpreter ----------

   These mirror the canonicalization rules above on native [int] / [float]
   payloads so the closure compiler can run arithmetic without allocating a
   [Value.t] per element.  They are only meaningful for dtypes whose value
   range fits a native int (bits <= 32); I64 keeps the boxed path. *)

let wrap_native dt x =
  let b = Dtype.bits dt in
  if b >= 63 then invalid_arg "Value.wrap_native: dtype too wide for native int";
  (* native-int overflow is mod 2^63, which preserves the low [b] bits for
     b <= 62, so masking here agrees with the Int64-based [wrap] above *)
  let masked = x land ((1 lsl b) - 1) in
  if Dtype.is_signed dt then
    if masked land (1 lsl (b - 1)) <> 0 then masked - (1 lsl b) else masked
  else if Dtype.equal dt Dtype.Bool then (if masked = 0 then 0 else 1)
  else masked

let round_float = round_to_precision

let trunc_int64_of_float f =
  if Float.is_nan f then 0L
  else if f >= Int64.to_float Int64.max_int then Int64.max_int
  else if f <= Int64.to_float Int64.min_int then Int64.min_int
  else Int64.of_float f

let trunc_int_of_float f = Int64.to_int (trunc_int64_of_float f)

let sat_int_of_float dt f = Int64.to_int (float_to_int_sat dt f)

let to_string = function
  | Int (dt, x) -> Printf.sprintf "%Ld%s" x (Dtype.to_string dt)
  | Float (dt, f) -> Printf.sprintf "%g%s" f (Dtype.to_string dt)

let pp fmt v = Format.pp_print_string fmt (to_string v)
