(* Lexer + recursive-descent parser for the [.uisa] pack format.

   Hostile-input discipline: this module NEVER raises to its caller.
   Every byte sequence — binary garbage, truncated packs, pathological
   nesting — produces either a pack or a single position-tagged
   [Diag.Isa_pack] error.  Nesting is depth-capped explicitly so deep
   input cannot smash the OCaml stack. *)

module Diag = Unit_tir.Diag

exception Fail of Diag.t

let max_expr_depth = 64
let max_int_digits = 12

(* ---------- tokens ---------- *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | COLON
  | COMMA
  | EQUALS
  | PLUS
  | STAR
  | EOF

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier '%s'" s
  | INT n -> Printf.sprintf "integer %d" n
  | FLOAT f -> Printf.sprintf "number %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACK -> "'['"
  | RBRACK -> "']'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COLON -> "':'"
  | COMMA -> "','"
  | EQUALS -> "'='"
  | PLUS -> "'+'"
  | STAR -> "'*'"
  | EOF -> "end of input"

type state = {
  source : string;  (** label used in diagnostics, e.g. the file name *)
  text : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
  mutable tok : token;
  mutable tok_pos : Ast.pos;
}

let fail_at st (pos : Ast.pos) fmt =
  Printf.ksprintf
    (fun msg ->
      raise
        (Fail
           (Diag.errorf Diag.Isa_pack "%s:%d:%d: %s" st.source pos.Ast.line
              pos.Ast.col msg)))
    fmt

let cur_pos st = { Ast.line = st.line; col = st.col }

(* ---------- lexer ---------- *)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.' || c = '-'

let is_digit c = c >= '0' && c <= '9'

let advance st c =
  st.off <- st.off + 1;
  if c = '\n' then begin
    st.line <- st.line + 1;
    st.col <- 1
  end
  else st.col <- st.col + 1

let rec skip_ws st =
  if st.off < String.length st.text then begin
    match st.text.[st.off] with
    | ' ' | '\t' | '\r' | '\n' ->
      advance st st.text.[st.off];
      skip_ws st
    | '#' ->
      (* comment to end of line *)
      while st.off < String.length st.text && st.text.[st.off] <> '\n' do
        advance st st.text.[st.off]
      done;
      skip_ws st
    | _ -> ()
  end

let lex_string st =
  let start = cur_pos st in
  advance st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.off >= String.length st.text then
      fail_at st start "unterminated string literal"
    else
      match st.text.[st.off] with
      | '"' -> advance st '"'
      | '\n' -> fail_at st start "unterminated string literal"
      | '\\' ->
        advance st '\\';
        if st.off >= String.length st.text then
          fail_at st start "unterminated string literal"
        else begin
          (match st.text.[st.off] with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | 'n' -> Buffer.add_char b '\n'
           | c -> fail_at st (cur_pos st) "unknown escape '\\%c'" c);
          advance st st.text.[st.off];
          go ()
        end
      | c ->
        Buffer.add_char b c;
        advance st c;
        go ()
  in
  go ();
  STRING (Buffer.contents b)

let lex_number st =
  let pos = cur_pos st in
  let start = st.off in
  while st.off < String.length st.text && is_digit st.text.[st.off] do
    advance st st.text.[st.off]
  done;
  let has_frac =
    st.off + 1 < String.length st.text
    && st.text.[st.off] = '.'
    && is_digit st.text.[st.off + 1]
  in
  if has_frac then begin
    advance st '.';
    while st.off < String.length st.text && is_digit st.text.[st.off] do
      advance st st.text.[st.off]
    done
  end;
  let has_exp =
    st.off + 1 < String.length st.text
    && (st.text.[st.off] = 'e' || st.text.[st.off] = 'E')
    && (is_digit st.text.[st.off + 1]
        || ((st.text.[st.off + 1] = '+' || st.text.[st.off + 1] = '-')
            && st.off + 2 < String.length st.text
            && is_digit st.text.[st.off + 2]))
  in
  if has_exp then begin
    advance st st.text.[st.off];
    if st.text.[st.off] = '+' || st.text.[st.off] = '-' then
      advance st st.text.[st.off];
    while st.off < String.length st.text && is_digit st.text.[st.off] do
      advance st st.text.[st.off]
    done
  end;
  if has_frac || has_exp then begin
    let s = String.sub st.text start (st.off - start) in
    match float_of_string_opt s with
    | Some f -> FLOAT f
    | None -> fail_at st pos "malformed number '%s'" s
  end
  else begin
    let s = String.sub st.text start (st.off - start) in
    if String.length s > max_int_digits then
      fail_at st pos "integer literal '%s' too large" s;
    match int_of_string_opt s with
    | Some n -> INT n
    | None -> fail_at st pos "malformed integer '%s'" s
  end

let lex_ident st =
  let start = st.off in
  while st.off < String.length st.text && is_ident_char st.text.[st.off] do
    advance st st.text.[st.off]
  done;
  IDENT (String.sub st.text start (st.off - start))

let next_token st =
  skip_ws st;
  st.tok_pos <- cur_pos st;
  if st.off >= String.length st.text then st.tok <- EOF
  else begin
    let c = st.text.[st.off] in
    let simple t =
      advance st c;
      t
    in
    st.tok <-
      (match c with
       | '{' -> simple LBRACE
       | '}' -> simple RBRACE
       | '[' -> simple LBRACK
       | ']' -> simple RBRACK
       | '(' -> simple LPAREN
       | ')' -> simple RPAREN
       | ':' -> simple COLON
       | ',' -> simple COMMA
       | '=' -> simple EQUALS
       | '+' -> simple PLUS
       | '*' -> simple STAR
       | '"' -> lex_string st
       | c when is_digit c -> lex_number st
       | c when is_ident_start c -> lex_ident st
       | c -> fail_at st (cur_pos st) "illegal character %C" c)
  end

(* ---------- parser ---------- *)

let expect st tok what =
  if st.tok = tok then next_token st
  else fail_at st st.tok_pos "expected %s, got %s" what (token_to_string st.tok)

let ident st what =
  match st.tok with
  | IDENT s ->
    next_token st;
    s
  | t -> fail_at st st.tok_pos "expected %s, got %s" what (token_to_string t)

let int_lit st what =
  match st.tok with
  | INT n ->
    next_token st;
    n
  | t -> fail_at st st.tok_pos "expected %s, got %s" what (token_to_string t)

let name_lit st what =
  match st.tok with
  | IDENT s | STRING s ->
    next_token st;
    s
  | t -> fail_at st st.tok_pos "expected %s, got %s" what (token_to_string t)

let reserved =
  [ "uisa"; "instruction"; "platform"; "llvm"; "op"; "cost"; "latency";
    "throughput"; "macs"; "tensor"; "spatial"; "reduce"; "init"; "out";
    "cast"; "in_place"; "zero" ]

let declared_name st pos what s =
  if List.mem s reserved then
    fail_at st pos "'%s' is a reserved word and cannot name a %s" s what;
  s

let rec parse_expr st depth =
  if depth > max_expr_depth then
    fail_at st st.tok_pos "expression nesting deeper than %d" max_expr_depth;
  let lhs = parse_mul st depth in
  let rec adds lhs =
    match st.tok with
    | PLUS ->
      let pos = st.tok_pos in
      next_token st;
      let rhs = parse_mul st depth in
      adds (Ast.Add (pos, lhs, rhs))
    | _ -> lhs
  in
  adds lhs

and parse_mul st depth =
  let lhs = parse_atom st depth in
  let rec muls lhs =
    match st.tok with
    | STAR ->
      let pos = st.tok_pos in
      next_token st;
      let rhs = parse_atom st depth in
      muls (Ast.Mul (pos, lhs, rhs))
    | _ -> lhs
  in
  muls lhs

and parse_atom st depth =
  let pos = st.tok_pos in
  match st.tok with
  | INT n ->
    next_token st;
    Ast.Int (pos, n)
  | LPAREN ->
    next_token st;
    let e = parse_expr st (depth + 1) in
    expect st RPAREN "')'";
    e
  | IDENT "cast" ->
    next_token st;
    expect st LPAREN "'(' after cast";
    let dt = ident st "a dtype name" in
    expect st COMMA "','";
    let e = parse_expr st (depth + 1) in
    expect st RPAREN "')'";
    Ast.Cast (pos, dt, e)
  | IDENT name ->
    next_token st;
    if st.tok = LBRACK then begin
      next_token st;
      let rec indices acc =
        let e = parse_expr st (depth + 1) in
        match st.tok with
        | COMMA ->
          next_token st;
          indices (e :: acc)
        | _ ->
          expect st RBRACK "']'";
          List.rev (e :: acc)
      in
      Ast.Access (pos, name, indices [])
    end
    else Ast.Ref (pos, name)
  | t ->
    fail_at st pos "expected an expression, got %s" (token_to_string t)

let parse_cost st (inst : Ast.inst) =
  expect st LBRACE "'{' after cost";
  let inst = ref inst in
  let dup pos what = fail_at st pos "duplicate %s" what in
  let rec fields () =
    match st.tok with
    | RBRACE -> next_token st
    | IDENT "latency" ->
      let pos = st.tok_pos in
      next_token st;
      if !inst.Ast.i_latency <> None then dup pos "latency";
      inst := { !inst with Ast.i_latency = Some (pos, int_lit st "an integer") };
      fields ()
    | IDENT "throughput" ->
      let pos = st.tok_pos in
      next_token st;
      if !inst.Ast.i_throughput <> None then dup pos "throughput";
      let v =
        match st.tok with
        | INT n ->
          next_token st;
          float_of_int n
        | FLOAT f ->
          next_token st;
          f
        | t -> fail_at st st.tok_pos "expected a number, got %s" (token_to_string t)
      in
      inst := { !inst with Ast.i_throughput = Some (pos, v) };
      fields ()
    | IDENT "macs" ->
      let pos = st.tok_pos in
      next_token st;
      if !inst.Ast.i_macs <> None then dup pos "macs";
      inst := { !inst with Ast.i_macs = Some (pos, int_lit st "an integer") };
      fields ()
    | t ->
      fail_at st st.tok_pos
        "expected latency/throughput/macs or '}', got %s" (token_to_string t)
  in
  fields ();
  !inst

let parse_inst st =
  let ipos = st.tok_pos in
  next_token st;
  (* past 'instruction' *)
  let name = name_lit st "an instruction name" in
  expect st LBRACE "'{'";
  let inst =
    ref
      { Ast.i_pos = ipos; i_name = name; i_platform = None; i_llvm = None;
        i_op = None; i_latency = None; i_throughput = None; i_macs = None;
        i_tensors = []; i_spatial = []; i_reduce = []; i_init = None;
        i_out = None
      }
  in
  let dup pos what = fail_at st pos "duplicate %s" what in
  let rec fields () =
    match st.tok with
    | RBRACE -> next_token st
    | IDENT "platform" ->
      let pos = st.tok_pos in
      next_token st;
      if !inst.Ast.i_platform <> None then dup pos "platform";
      inst := { !inst with Ast.i_platform = Some (pos, ident st "a platform") };
      fields ()
    | IDENT "llvm" ->
      let pos = st.tok_pos in
      next_token st;
      if !inst.Ast.i_llvm <> None then dup pos "llvm";
      (match st.tok with
       | STRING s ->
         next_token st;
         inst := { !inst with Ast.i_llvm = Some s }
       | t -> fail_at st st.tok_pos "expected a string, got %s" (token_to_string t));
      fields ()
    | IDENT "op" ->
      let pos = st.tok_pos in
      next_token st;
      if !inst.Ast.i_op <> None then dup pos "op";
      inst := { !inst with Ast.i_op = Some (name_lit st "an op name") };
      fields ()
    | IDENT "cost" ->
      let pos = st.tok_pos in
      next_token st;
      if
        !inst.Ast.i_latency <> None || !inst.Ast.i_throughput <> None
        || !inst.Ast.i_macs <> None
      then dup pos "cost block";
      inst := parse_cost st !inst;
      fields ()
    | IDENT "tensor" ->
      let pos = st.tok_pos in
      next_token st;
      let tname = declared_name st pos "tensor" (ident st "a tensor name") in
      expect st COLON "':'";
      let dt = ident st "a dtype name" in
      expect st LBRACK "'['";
      let rec dims acc =
        let d = int_lit st "a dimension" in
        match st.tok with
        | COMMA ->
          next_token st;
          dims (d :: acc)
        | _ ->
          expect st RBRACK "']'";
          List.rev (d :: acc)
      in
      let shape = dims [] in
      inst :=
        { !inst with Ast.i_tensors = !inst.Ast.i_tensors @ [ (pos, tname, dt, shape) ] };
      fields ()
    | IDENT (("spatial" | "reduce") as kind) ->
      let pos = st.tok_pos in
      next_token st;
      let aname = declared_name st pos "axis" (ident st "an axis name") in
      expect st COLON "':'";
      let extent = int_lit st "an extent" in
      (if kind = "spatial" then
         inst :=
           { !inst with Ast.i_spatial = !inst.Ast.i_spatial @ [ (pos, aname, extent) ] }
       else
         inst :=
           { !inst with Ast.i_reduce = !inst.Ast.i_reduce @ [ (pos, aname, extent) ] });
      fields ()
    | IDENT "init" ->
      let pos = st.tok_pos in
      next_token st;
      if !inst.Ast.i_init <> None then dup pos "init";
      let init =
        match st.tok with
        | IDENT "in_place" ->
          next_token st;
          Ast.Init_in_place
        | IDENT "zero" ->
          next_token st;
          Ast.Init_zero
        | IDENT name ->
          next_token st;
          Ast.Init_tensor name
        | t ->
          fail_at st st.tok_pos
            "expected in_place, zero or a tensor name, got %s" (token_to_string t)
      in
      inst := { !inst with Ast.i_init = Some (pos, init) };
      fields ()
    | IDENT "out" ->
      let pos = st.tok_pos in
      next_token st;
      if !inst.Ast.i_out <> None then dup pos "out";
      let oname = ident st "the output tensor name" in
      expect st EQUALS "'='";
      let body = parse_expr st 0 in
      inst := { !inst with Ast.i_out = Some (pos, oname, body) };
      fields ()
    | t ->
      fail_at st st.tok_pos
        "expected an instruction field (platform/llvm/op/cost/tensor/spatial/reduce/init/out) or '}', got %s"
        (token_to_string t)
  in
  fields ();
  !inst

let parse_pack st =
  (match st.tok with
   | IDENT "uisa" -> next_token st
   | t ->
     fail_at st st.tok_pos "expected pack header 'uisa 1', got %s"
       (token_to_string t));
  let version = int_lit st "a pack version" in
  if version <> 1 then
    fail_at st st.tok_pos "unsupported pack version %d (this build reads 1)"
      version;
  let rec insts acc =
    match st.tok with
    | EOF -> List.rev acc
    | IDENT "instruction" -> insts (parse_inst st :: acc)
    | t ->
      fail_at st st.tok_pos "expected 'instruction' or end of input, got %s"
        (token_to_string t)
  in
  { Ast.p_version = version; p_insts = insts [] }

let parse ~source text =
  let st =
    { source; text; off = 0; line = 1; col = 1; tok = EOF;
      tok_pos = { Ast.line = 1; col = 1 }
    }
  in
  match
    next_token st;
    parse_pack st
  with
  | pack -> Ok pack
  | exception Fail d -> Error d
  | exception Stack_overflow ->
    Error
      (Diag.errorf Diag.Isa_pack "%s: pack nesting exhausted the stack" source)
