(* Pack loading: parse -> elaborate -> digest-checked registration.

   This is the runtime entry point behind [unitc --isa-pack], the
   [unitc isa] subcommands and the daemon's [load_isa] request.  The
   registry itself is safe against concurrent readers (it publishes
   immutable snapshots; see [Registry]), but the two-phase
   conflict-check-then-register below and the loaded-pack list must not
   interleave across concurrent loads, so every load funnels through
   [lock].  The loaded-pack list backs the daemon's [/stats] endpoint
   and [unitc isa list] provenance. *)

module Diag = Unit_tir.Diag
module Obs = Unit_obs.Obs
module Registry = Unit_isa.Registry

let c_pack_loaded = Obs.counter "pipeline.isa.pack_loaded"
let c_intrin_registered = Obs.counter "pipeline.isa.intrin_registered"

type status =
  | Added  (** fresh registration *)
  | Idempotent  (** a same-digest duplicate (builtin round-trip, re-load) *)

type pack_info = {
  pk_source : string;
  pk_instructions : (string * string * status) list;
      (** instruction name, semantic digest, registration outcome *)
  pk_warnings : Diag.t list;
}

let lock = Mutex.create ()

(* Exception-safe: an unexpected raise inside the critical section must
   not leave [lock] held, or every later pack load deadlocks. *)
let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let loaded_packs : pack_info list ref = ref []
let loaded () = with_lock (fun () -> List.rev !loaded_packs)
let reset_for_testing () = with_lock (fun () -> loaded_packs := [])

(* ---------- check (parse + elaborate, no registration) ---------- *)

let check_string ~source text =
  match Parse.parse ~source text with
  | Error d -> Error [ d ]
  | Ok pack ->
    (match Elab.elaborate ~source pack with
     | Error d -> Error [ d ]
     | Ok els -> Ok els)

(* ---------- load (check + register) ---------- *)

let load_string ~source text =
  match check_string ~source text with
  | Error ds -> Error ds
  | Ok els ->
    with_lock (fun () ->
      (* two-phase: check every instruction against the registry before
         registering any, so a pack with one conflicting instruction is
         refused atomically instead of half-loaded *)
      let conflicts =
        List.filter_map
          (fun (el : Elab.elaborated) ->
            match Registry.find el.Elab.el_intrin.Unit_isa.Intrin.name with
            | Some existing
              when not
                     (String.equal
                        (Unit_isa.Intrin.semantic_digest existing)
                        el.Elab.el_digest) ->
              (match
                 Registry.register_checked ~source el.Elab.el_intrin
               with
               | Error d -> Some d
               | Ok _ -> None (* unreachable: digest conflict refused *))
            | _ -> None)
          els
      in
      match conflicts with
      | _ :: _ -> Error conflicts
      | [] ->
        let instructions =
          List.map
            (fun (el : Elab.elaborated) ->
              let name = el.Elab.el_intrin.Unit_isa.Intrin.name in
              match Registry.register_checked ~source el.Elab.el_intrin with
              | Ok Registry.Registered ->
                Obs.incr c_intrin_registered;
                (name, el.Elab.el_digest, Added)
              | Ok Registry.Idempotent -> (name, el.Elab.el_digest, Idempotent)
              | Error d ->
                (* cannot happen: conflicts were refused above, and the
                   lock serializes loaders *)
                raise (Failure (Diag.to_string d)))
            els
        in
        let info =
          { pk_source = source;
            pk_instructions = instructions;
            pk_warnings = List.concat_map (fun e -> e.Elab.el_warnings) els
          }
        in
        loaded_packs := info :: !loaded_packs;
        Obs.incr c_pack_loaded;
        Ok info)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> Ok text
  | exception Sys_error m ->
    Error [ Diag.errorf Diag.Isa_pack "cannot read pack %s: %s" path m ]

let load_file path =
  match read_file path with
  | Error ds -> Error ds
  | Ok text -> load_string ~source:path text

let load_files paths =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | path :: rest ->
      (match load_file path with
       | Error ds -> Error ds
       | Ok info -> go (info :: acc) rest)
  in
  go [] paths

let check_file path =
  match read_file path with
  | Error ds -> Error ds
  | Ok text -> check_string ~source:path text
