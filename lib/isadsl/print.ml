(* Canonical [.uisa] printer: the inverse of [Parse] + [Elab].

   The round-trip property the test suite pins: for every registered
   instruction whose description stays within the pack surface
   (access/cast/mul/add, i32 immediates — exactly what [Defs] uses),
   [print -> parse -> elaborate] yields the same semantic digest. *)

module Diag = Unit_tir.Diag
module Dtype = Unit_dtype.Dtype
module Intrin = Unit_isa.Intrin
open Unit_dsl

exception Unprintable of string

let rec expr (e : Expr.t) =
  match e with
  | Expr.Imm (Unit_dtype.Value.Int (Dtype.I32, x)) -> Int64.to_string x
  | Expr.Imm v ->
    raise
      (Unprintable
         (Printf.sprintf "immediate %s outside the pack surface (i32 only)"
            (Unit_dtype.Value.to_string v)))
  | Expr.Axis_ref a -> a.Axis.name
  | Expr.Access (t, indices) ->
    Printf.sprintf "%s[%s]" t.Tensor.name
      (String.concat ", " (List.map expr indices))
  | Expr.Cast (dt, e) -> Printf.sprintf "cast(%s, %s)" (Dtype.to_string dt) (expr e)
  | Expr.Binop (Expr.Add, a, b) -> Printf.sprintf "(%s + %s)" (expr a) (expr b)
  | Expr.Binop (Expr.Mul, a, b) -> Printf.sprintf "(%s * %s)" (expr a) (expr b)
  | Expr.Binop (op, _, _) ->
    raise
      (Unprintable
         (Printf.sprintf "operator %s outside the pack surface (add/mul only)"
            (Expr.binop_to_string op)))
  | Expr.Neg _ -> raise (Unprintable "negation outside the pack surface")

(* Numbers must survive print -> parse bit-exactly.  Integers-valued
   throughputs print as "2.0"; everything else gets enough digits
   ([%.17g] round-trips any double) — the grammar reads a plain decimal
   either way. *)
let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

(* Quoted strings must emit only the escapes the pack lexer understands
   (backslash-escaped quote, backslash and newline); every other byte —
   including control characters — passes through the lexer raw, so we
   print it raw.  OCaml's %S would emit escapes like backslash-t or
   backslash-255 that the lexer rejects, breaking the print -> parse
   round-trip. *)
let string_lit s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* Names print bare when they fit the identifier grammar, quoted
   otherwise. *)
let name_lit s =
  let bare =
    String.length s > 0
    && Parse.is_ident_start s.[0]
    && String.for_all Parse.is_ident_char s
    && not (List.mem s Parse.reserved)
  in
  if bare then s else string_lit s

let instruction (i : Intrin.t) =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let op = i.Intrin.op in
  add "instruction %s {\n" (name_lit i.Intrin.name);
  add "  platform %s\n" (Intrin.platform_to_string i.Intrin.platform);
  add "  llvm %s\n" (string_lit i.Intrin.llvm_name);
  add "  op %s\n" (name_lit op.Op.name);
  add "  cost { latency %d  throughput %s  macs %d }\n" i.Intrin.cost.Intrin.latency
    (float_lit i.Intrin.cost.Intrin.throughput)
    i.Intrin.cost.Intrin.macs;
  let declared = Hashtbl.create 8 in
  List.iter
    (fun (t : Tensor.t) ->
      if not (Hashtbl.mem declared t.Tensor.name) then begin
        Hashtbl.add declared t.Tensor.name ();
        add "  tensor %s : %s[%s]\n" t.Tensor.name
          (Dtype.to_string t.Tensor.dtype)
          (String.concat ", " (List.map string_of_int (Array.to_list t.Tensor.shape)))
      end)
    (Op.inputs op @ [ op.Op.output ]);
  List.iter
    (fun (a : Axis.t) -> add "  spatial %s : %d\n" a.Axis.name a.Axis.extent)
    op.Op.spatial;
  List.iter
    (fun (a : Axis.t) -> add "  reduce %s : %d\n" a.Axis.name a.Axis.extent)
    op.Op.reduce;
  (match op.Op.init with
   | Op.Zero -> raise (Unprintable "init zero outside the pack surface")
   | Op.In_place -> add "  init in_place\n"
   | Op.Init_tensor c -> add "  init %s\n" c.Tensor.name);
  add "  out %s = %s\n" op.Op.output.Tensor.name (expr op.Op.body);
  add "}\n";
  Buffer.contents b

let pack_header = "uisa 1\n"

let pack intrins =
  match
    pack_header ^ "\n" ^ String.concat "\n" (List.map instruction intrins)
  with
  | s -> Ok s
  | exception Unprintable m ->
    Error (Diag.errorf Diag.Isa_pack "cannot print pack: %s" m)
