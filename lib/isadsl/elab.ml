(* Elaboration: surface AST -> validated [Intrin.t].

   The elaborator re-checks everything [Intrin.create] and [Op.create]
   assume — dtype names, tensor/axis name uniqueness, shape vs spatial
   extents, accumulator legality, cost sanity — but with the pack's
   source positions attached, so a bad pack fails with
   [file:line:col: ...] instead of a bare exception from deep inside the
   DSL constructors.  On top of that it runs the existing overflow lint
   over the instruction's own scalar reference, so an accumulation that
   cannot fit its accumulator dtype is surfaced at load time, and it
   computes the canonical semantic digest used by the registry collision
   policy and the tuning-store keys. *)

open Unit_dsl
module Diag = Unit_tir.Diag
module Dtype = Unit_dtype.Dtype
module Intrin = Unit_isa.Intrin

exception Fail of Diag.t

type elaborated = {
  el_intrin : Intrin.t;
  el_digest : string;
  el_warnings : Diag.t list;
}

let fail ~source (pos : Ast.pos) fmt =
  Printf.ksprintf
    (fun msg ->
      raise
        (Fail
           (Diag.errorf Diag.Isa_pack "%s:%d:%d: %s" source pos.Ast.line
              pos.Ast.col msg)))
    fmt

let resolve_dtype ~source pos name =
  match Dtype.of_string name with
  | Some dt -> dt
  | None ->
    fail ~source pos "unknown dtype '%s' (know %s)" name
      (String.concat ", " (List.map Dtype.to_string Dtype.all))

(* ---------- one instruction ---------- *)

let elab_inst ~source (inst : Ast.inst) =
  let fail pos fmt = fail ~source pos fmt in
  let name = inst.Ast.i_name in
  if String.length name = 0 then fail inst.Ast.i_pos "empty instruction name";
  let required what = function
    | Some v -> v
    | None -> fail inst.Ast.i_pos "instruction %s: missing %s" name what
  in
  (* platform *)
  let plat_pos, plat_name = required "platform" inst.Ast.i_platform in
  let platform =
    match Intrin.platform_of_string plat_name with
    | Some p -> p
    | None -> fail plat_pos "unknown platform '%s' (know x86, arm, gpu)" plat_name
  in
  (* cost *)
  let lat_pos, latency = required "cost latency" inst.Ast.i_latency in
  let tput_pos, throughput = required "cost throughput" inst.Ast.i_throughput in
  let macs_pos, macs = required "cost macs" inst.Ast.i_macs in
  if latency < 1 then fail lat_pos "latency must be >= 1 (got %d)" latency;
  if not (throughput > 0.0) then
    fail tput_pos "throughput must be positive (got %g)" throughput;
  if macs < 1 then fail macs_pos "macs must be >= 1 (got %d)" macs;
  (* tensors *)
  let tensors = Hashtbl.create 8 in
  let tensor_order =
    List.map
      (fun (pos, tname, dtname, shape) ->
        if Hashtbl.mem tensors tname then fail pos "duplicate tensor '%s'" tname;
        let dt = resolve_dtype ~source pos dtname in
        let t =
          match Tensor.create ~name:tname ~shape dt with
          | t -> t
          | exception Invalid_argument m -> fail pos "tensor %s: %s" tname m
        in
        Hashtbl.add tensors tname t;
        t)
      inst.Ast.i_tensors
  in
  ignore tensor_order;
  (* axes *)
  let axes = Hashtbl.create 8 in
  let mk_axis kind (pos, aname, extent) =
    if Hashtbl.mem axes aname then fail pos "duplicate axis '%s'" aname;
    if Hashtbl.mem tensors aname then
      fail pos "'%s' already names a tensor; axis names must be distinct" aname;
    let a =
      match Axis.create ~name:aname kind ~extent with
      | a -> a
      | exception Invalid_argument m -> fail pos "axis %s: %s" aname m
    in
    Hashtbl.add axes aname a;
    a
  in
  let spatial = List.map (mk_axis Axis.Data_parallel) inst.Ast.i_spatial in
  let reduce = List.map (mk_axis Axis.Reduction) inst.Ast.i_reduce in
  (* body *)
  let rec elab_expr depth (e : Ast.expr) =
    if depth > Parse.max_expr_depth then
      fail (Ast.expr_pos e) "expression nesting deeper than %d"
        Parse.max_expr_depth;
    match e with
    | Ast.Int (pos, n) ->
      (match Expr.int_imm n with
       | e -> e
       | exception Expr.Type_error m -> fail pos "%s" m)
    | Ast.Ref (pos, n) ->
      (match Hashtbl.find_opt axes n with
       | Some a -> Expr.axis a
       | None ->
         if Hashtbl.mem tensors n then
           fail pos "tensor '%s' must be accessed with indices: %s[...]" n n
         else fail pos "unknown axis '%s'" n)
    | Ast.Access (pos, n, indices) ->
      (match Hashtbl.find_opt tensors n with
       | None -> fail pos "unknown tensor '%s'" n
       | Some t ->
         let idx = List.map (elab_expr (depth + 1)) indices in
         (match Expr.access t idx with
          | e -> e
          | exception Expr.Type_error m -> fail pos "%s" m))
    | Ast.Cast (pos, dtname, e) ->
      let dt = resolve_dtype ~source pos dtname in
      (match Expr.cast dt (elab_expr (depth + 1) e) with
       | e -> e
       | exception Expr.Type_error m -> fail pos "%s" m)
    | Ast.Add (pos, a, b) ->
      (match Expr.add (elab_expr (depth + 1) a) (elab_expr (depth + 1) b) with
       | e -> e
       | exception Expr.Type_error m -> fail pos "%s" m)
    | Ast.Mul (pos, a, b) ->
      (match Expr.mul (elab_expr (depth + 1) a) (elab_expr (depth + 1) b) with
       | e -> e
       | exception Expr.Type_error m -> fail pos "%s" m)
  in
  let out_pos, out_name, body_ast = required "out field" inst.Ast.i_out in
  let output =
    match Hashtbl.find_opt tensors out_name with
    | Some t -> t
    | None -> fail out_pos "unknown output tensor '%s'" out_name
  in
  let body = elab_expr 0 body_ast in
  (* init *)
  let init_pos, init_ast = required "init field" inst.Ast.i_init in
  let init =
    match init_ast with
    | Ast.Init_in_place -> Op.In_place
    | Ast.Init_zero ->
      fail init_pos
        "init zero: a tensorized instruction must accumulate (use in_place \
         or an accumulator tensor)"
    | Ast.Init_tensor n ->
      (match Hashtbl.find_opt tensors n with
       | Some t -> Op.Init_tensor t
       | None -> fail init_pos "unknown init tensor '%s'" n)
  in
  let op_name = Option.value ~default:name inst.Ast.i_op in
  let op =
    match Op.create ~name:op_name ~output ~spatial ~reduce ~init body with
    | op -> op
    | exception Op.Invalid_op m -> fail inst.Ast.i_pos "%s" m
  in
  let intrin =
    let llvm_name = Option.value ~default:("uisa." ^ name) inst.Ast.i_llvm in
    match
      Intrin.create ~name ~llvm_name ~platform
        ~cost:{ Intrin.latency; throughput; macs }
        op
    with
    | i -> i
    | exception Intrin.Invalid_intrin m -> fail inst.Ast.i_pos "%s" m
  in
  (* dtype accumulation legality via the existing overflow lint: lower the
     instruction's own description to its scalar reference and
     interval-check it.  A provable wrap is an error; a may-overflow
     accumulation is passed through as a warning. *)
  let lint =
    match Unit_analysis.Analysis.check_func (Unit_tir.Lower.scalar_reference op) with
    | diags -> diags
    | exception e ->
      fail inst.Ast.i_pos "instruction %s: overflow lint failed: %s" name
        (Printexc.to_string e)
  in
  (match Diag.errors lint with
   | d :: _ ->
     fail inst.Ast.i_pos "instruction %s: rejected by the overflow lint: %s"
       name (Diag.to_string d)
   | [] -> ());
  let warnings =
    List.map
      (fun (d : Diag.t) ->
        Diag.warnf Diag.Isa_pack "%s:%d:%d: instruction %s: %s" source
          inst.Ast.i_pos.Ast.line inst.Ast.i_pos.Ast.col name (Diag.to_string d))
      (Diag.warnings lint)
  in
  { el_intrin = intrin;
    el_digest = Intrin.semantic_digest intrin;
    el_warnings = warnings
  }

(* ---------- pack entry point ---------- *)

let elaborate ~source (pack : Ast.pack) =
  match
    let seen = Hashtbl.create 8 in
    List.map
      (fun (inst : Ast.inst) ->
        if Hashtbl.mem seen inst.Ast.i_name then
          fail ~source inst.Ast.i_pos
            "instruction %s defined twice in this pack" inst.Ast.i_name;
        Hashtbl.add seen inst.Ast.i_name ();
        elab_inst ~source inst)
      pack.Ast.p_insts
  with
  | els -> Ok els
  | exception Fail d -> Error d
