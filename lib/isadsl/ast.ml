(* Surface syntax tree of the [.uisa] ISA-pack format.

   Every node carries the source position it was parsed at, so the
   elaborator can tag its diagnostics with [file:line:col] even when the
   failing check is far from the parser (unknown dtype, axis/shape
   mismatch, overflow lint).  Nothing here is validated beyond grammar:
   dtype names, tensor references and arithmetic well-typedness are the
   elaborator's job. *)

type pos = {
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
}

let pos_to_string p = Printf.sprintf "%d:%d" p.line p.col

type expr =
  | Int of pos * int  (** integer immediate (dtype [i32]) *)
  | Ref of pos * string  (** bare name: resolves to a loop axis *)
  | Access of pos * string * expr list  (** tensor element read [t\[i, j\]] *)
  | Cast of pos * string * expr  (** [cast(dtype, e)] *)
  | Add of pos * expr * expr
  | Mul of pos * expr * expr

let expr_pos = function
  | Int (p, _) | Ref (p, _) | Access (p, _, _) | Cast (p, _, _)
  | Add (p, _, _) | Mul (p, _, _) ->
    p

type init =
  | Init_zero
  | Init_in_place
  | Init_tensor of string

type inst = {
  i_pos : pos;
  i_name : string;
  i_platform : (pos * string) option;
  i_llvm : string option;
  i_op : string option;  (** DSL op name; defaults to the instruction name *)
  i_latency : (pos * int) option;
  i_throughput : (pos * float) option;
  i_macs : (pos * int) option;
  i_tensors : (pos * string * string * int list) list;
      (** declaration order: position, name, dtype name, shape *)
  i_spatial : (pos * string * int) list;
  i_reduce : (pos * string * int) list;
  i_init : (pos * init) option;
  i_out : (pos * string * expr) option;  (** output tensor name and body *)
}

type pack = {
  p_version : int;
  p_insts : inst list;
}
