open Unit_tir

type estimate = {
  est_cycles : float;
  est_seconds : float;
  est_compute_cycles : float;
  est_l2_cycles : float;
  est_dram_cycles : float;
  est_parallel_grains : int;
  est_threads_used : float;
}

(* ---------- instruction-issue analysis (pass A) ---------- *)

type comp = {
  issue : float;  (** cycles for one execution, stalls of inner loops included *)
  instr_bytes : float;  (** straight-line code size of one execution *)
  accum_ops : float;  (** accumulates whose dependency bound is still pending *)
  chains : float;  (** independent accumulation targets *)
  lat : float;  (** latency of the accumulating instruction *)
  accum_indices : Texpr.t list;  (** accumulation target indices *)
  stall : float;  (** of [issue], cycles attributable to RAW-hazard stalls *)
  icache : float;  (** of [issue], cycles from the unroll/I-cache penalty *)
  macs : float;  (** multiply-accumulates performed per execution *)
}

let zero_comp =
  { issue = 0.0; instr_bytes = 0.0; accum_ops = 0.0; chains = 0.0; lat = 0.0;
    accum_indices = []; stall = 0.0; icache = 0.0; macs = 0.0 }

let combine a b =
  { issue = a.issue +. b.issue;
    instr_bytes = a.instr_bytes +. b.instr_bytes;
    accum_ops = a.accum_ops +. b.accum_ops;
    chains = a.chains +. b.chains;
    lat = Float.max a.lat b.lat;
    accum_indices = a.accum_indices @ b.accum_indices;
    stall = a.stall +. b.stall;
    icache = a.icache +. b.icache;
    macs = a.macs +. b.macs
  }

(* Issue cost of a scalar expression.  Index arithmetic is discounted: real
   backends strength-reduce address computations out of inner loops. *)
let rec expr_cost (spec : Spec.cpu) ~index e =
  let discount = if index then 0.2 else 1.0 in
  match e with
  | Texpr.Imm _ | Texpr.Var _ -> 0.0
  | Texpr.Load (_, ix) ->
    (discount /. spec.Spec.load_ports) +. expr_cost spec ~index:true ix
  | Texpr.Binop (_, a, b) | Texpr.Cmp (_, a, b) | Texpr.And (a, b) | Texpr.Or (a, b) ->
    (discount /. spec.Spec.issue_width)
    +. expr_cost spec ~index a +. expr_cost spec ~index b
  | Texpr.Not a -> (discount /. spec.Spec.issue_width) +. expr_cost spec ~index a
  | Texpr.Cast (_, a) -> (discount *. spec.Spec.cast_cost) +. expr_cost spec ~index a
  | Texpr.Select (c, a, b) ->
    (discount /. spec.Spec.issue_width)
    +. expr_cost spec ~index c +. expr_cost spec ~index a +. expr_cost spec ~index b

let rec expr_nodes = function
  | Texpr.Imm _ | Texpr.Var _ -> 1
  | Texpr.Load (_, ix) | Texpr.Not ix | Texpr.Cast (_, ix) -> 1 + expr_nodes ix
  | Texpr.Binop (_, a, b) | Texpr.Cmp (_, a, b) | Texpr.And (a, b) | Texpr.Or (a, b) ->
    1 + expr_nodes a + expr_nodes b
  | Texpr.Select (c, a, b) -> 1 + expr_nodes c + expr_nodes a + expr_nodes b

let scalar_accum_latency dtype = if Unit_dtype.Dtype.is_float dtype then 4.0 else 1.0

(* Cycles to fill one register operand from a tile: one load per maximal
   contiguous run, broadcast lanes are free.  The dense run is the largest
   prefix of the stride-sorted axes where each stride equals the product of
   the previous extents (e.g. the NCHW[x]c weight tile with strides
   (ok=4, ci=1) is one dense 64-byte run). *)
let tile_load_cost (spec : Spec.cpu) intrin (tile : Stmt.tile) =
  let extent_of name =
    match Unit_isa.Intrin.axis_by_name intrin name with
    | Some a -> a.Unit_dsl.Axis.extent
    | None -> 1
  in
  let elem_bytes = Unit_dtype.Dtype.bytes tile.Stmt.tile_buf.Buffer.dtype in
  let elements =
    List.fold_left (fun acc (name, _) -> acc * extent_of name) 1 tile.Stmt.tile_strides
  in
  let sorted =
    List.sort
      (fun (_, s1) (_, s2) -> compare (abs s1) (abs s2))
      tile.Stmt.tile_strides
  in
  let run =
    List.fold_left
      (fun run (name, stride) -> if abs stride = run then run * extent_of name else run)
      1 sorted
  in
  let loads_per_run = Float.of_int ((run * elem_bytes) + 63) /. 64.0 in
  Float.of_int (elements / run) *. Float.max 1.0 loads_per_run /. spec.Spec.load_ports

let var_independent index var = Linear.is_independent_of index var

let rec analyze (spec : Spec.cpu) stmt =
  match stmt with
  | Stmt.Nop -> zero_comp
  | Stmt.Seq stmts -> List.fold_left (fun acc s -> combine acc (analyze spec s)) zero_comp stmts
  | Stmt.Let (_, e, body) ->
    let c = analyze spec body in
    { c with
      issue = c.issue +. expr_cost spec ~index:false e;
      instr_bytes = c.instr_bytes +. (4.0 *. Float.of_int (expr_nodes e))
    }
  | Stmt.Alloc (_, body) -> analyze spec body
  | Stmt.If { cond; then_; else_; _ } ->
    (* "likely" guards: the body is charged in full — padded iterations do
       wasted work, which is exactly the residue penalty *)
    let c = analyze spec then_ in
    let c =
      match else_ with Some e -> combine c (analyze spec e) | None -> c
    in
    { c with
      issue = c.issue +. spec.Spec.branch_cost +. expr_cost spec ~index:true cond;
      instr_bytes = c.instr_bytes +. (4.0 *. Float.of_int (expr_nodes cond))
    }
  | Stmt.Store (buf, index, value) ->
    let store_cost = 1.0 /. spec.Spec.load_ports in
    let base_cost =
      expr_cost spec ~index:false value +. expr_cost spec ~index:true index +. store_cost
    in
    let bytes = 4.0 *. Float.of_int (expr_nodes value + expr_nodes index + 1) in
    (match value with
     | Texpr.Binop (Texpr.Add, Texpr.Load (b, ix), _)
       when Buffer.equal b buf && Texpr.equal_structural ix index ->
       { zero_comp with
         issue = base_cost;
         instr_bytes = bytes;
         accum_ops = 1.0;
         chains = 1.0;
         lat = scalar_accum_latency buf.Buffer.dtype;
         accum_indices = [ index ];
         macs = 1.0
       }
     | _ ->
       { zero_comp with issue = base_cost; instr_bytes = bytes })
  | Stmt.Intrin_call { intrin; output; inputs } ->
    let intrin_def =
      match Unit_isa.Registry.find intrin with
      | Some i -> i
      | None -> invalid_arg ("Cpu_model: unregistered intrinsic " ^ intrin)
    in
    let cost = intrin_def.Unit_isa.Intrin.cost in
    (* the accumulator operand aliases the output register; loading it is
       free (register-resident across the reduction) *)
    let input_cost =
      List.fold_left
        (fun acc (_, tile) ->
          if
            Buffer.equal tile.Stmt.tile_buf output.Stmt.tile_buf
            && Texpr.equal_structural tile.Stmt.tile_base output.Stmt.tile_base
          then acc
          else acc +. tile_load_cost spec intrin_def tile)
        0.0 inputs
    in
    { zero_comp with
      issue = (1.0 /. cost.Unit_isa.Intrin.throughput) +. input_cost;
      instr_bytes = 8.0 +. (8.0 *. Float.of_int (List.length inputs));
      accum_ops = 1.0;
      chains = 1.0;
      lat = Float.of_int cost.Unit_isa.Intrin.latency;
      accum_indices = [ output.Stmt.tile_base ];
      macs = Float.of_int cost.Unit_isa.Intrin.macs
    }
  | Stmt.For { var; extent; kind; body } ->
    let c = analyze spec body in
    let n = Float.of_int extent in
    let invariant =
      c.accum_indices <> []
      && List.for_all (fun ix -> var_independent ix var) c.accum_indices
    in
    (match kind with
     | Stmt.Unrolled | Stmt.Vectorized ->
       let instr_bytes = c.instr_bytes *. n in
       let overflow = instr_bytes > Float.of_int spec.Spec.icache_bytes in
       let issue = c.issue *. n in
       let issue = if overflow then issue *. spec.Spec.icache_penalty else issue in
       (* the penalty inflates the whole body; the excess over the
          un-penalized issue is I-cache time, the rest keeps its split *)
       let icache =
         if overflow then
           n *. (c.icache +. (c.issue *. (spec.Spec.icache_penalty -. 1.0)))
         else c.icache *. n
       in
       let c =
         { c with issue; instr_bytes; icache; stall = c.stall *. n;
           macs = c.macs *. n }
       in
       if invariant then
         (* unrolling a loop that does not advance the accumulators just
            repeats dependent work *)
         { c with accum_ops = c.accum_ops *. n }
       else
         { c with
           accum_ops = c.accum_ops *. n;
           chains = Float.max c.chains (c.chains *. n)
         }
     | Stmt.Serial | Stmt.Parallel | Stmt.Gpu_block _ | Stmt.Gpu_thread _
     | Stmt.Tensorized _ ->
       if invariant && c.accum_ops > 0.0 then begin
         (* reduction-carried: latency-bound per iteration; time beyond the
            body's own issue is a RAW-hazard stall *)
         let dep_bound = c.lat *. c.accum_ops /. Float.max 1.0 c.chains in
         let per_iter = Float.max c.issue dep_bound +. spec.Spec.loop_overhead in
         { c with
           issue = n *. per_iter;
           accum_ops = 0.0;
           stall = n *. (c.stall +. Float.max 0.0 (dep_bound -. c.issue));
           icache = c.icache *. n;
           macs = c.macs *. n
         }
       end
       else
         { c with
           issue = n *. (c.issue +. spec.Spec.loop_overhead);
           accum_ops = c.accum_ops *. n;
           chains = (if c.accum_ops > 0.0 then c.chains *. n else c.chains);
           stall = c.stall *. n;
           icache = c.icache *. n;
           macs = c.macs *. n
         })

(* ---------- memory analysis (pass B) ---------- *)

type access = {
  buf : Buffer.t;
  index : Texpr.t;
  span : int;  (** elements touched per execution beyond the base (tiles) *)
  inner : (Var.t * int) list;  (** loops traversed so far, inside-out *)
}

let accesses_of_expr e =
  List.map (fun (buf, index) -> { buf; index; span = 1; inner = [] }) (Texpr.loads_of e)

let tile_span intrin (tile : Stmt.tile) =
  let extent_of name =
    match Unit_isa.Intrin.axis_by_name intrin name with
    | Some a -> a.Unit_dsl.Axis.extent
    | None -> 1
  in
  List.fold_left (fun acc (name, _) -> acc * extent_of name) 1 tile.Stmt.tile_strides

let rec collect_accesses stmt =
  match stmt with
  | Stmt.Nop -> []
  | Stmt.Seq stmts -> List.concat_map collect_accesses stmts
  | Stmt.Let (_, e, body) -> accesses_of_expr e @ collect_accesses body
  | Stmt.Alloc (_, body) -> collect_accesses body
  | Stmt.If { cond; then_; else_; _ } ->
    accesses_of_expr cond @ collect_accesses then_
    @ (match else_ with Some e -> collect_accesses e | None -> [])
  | Stmt.Store (buf, index, value) ->
    ({ buf; index; span = 1; inner = [] } :: accesses_of_expr value)
    @ accesses_of_expr index
  | Stmt.Intrin_call { intrin; output; inputs } ->
    (match Unit_isa.Registry.find intrin with
     | None -> []
     | Some intrin_def ->
       let tile_access tile =
         { buf = tile.Stmt.tile_buf;
           index = tile.Stmt.tile_base;
           span = tile_span intrin_def tile;
           inner = []
         }
       in
       tile_access output :: List.map (fun (_, t) -> tile_access t) inputs)
  | Stmt.For { var; extent; body; _ } ->
    List.map
      (fun a -> { a with inner = (var, extent) :: a.inner })
      (collect_accesses body)

(* Distinct bytes an access touches across its inner loops. *)
let access_footprint a =
  let dependent_product =
    List.fold_left
      (fun acc (v, e) -> if Linear.is_independent_of a.index v then acc else acc * e)
      1 a.inner
  in
  let env v =
    match List.find_opt (fun (w, _) -> Var.equal v w) a.inner with
    | Some (_, e) -> Some (0, e - 1)
    | None -> Some (0, 0)
  in
  let range =
    match Linear.bounds ~env a.index with
    | Some (lo, hi) -> (hi - lo + 1 + a.span - 1)
    | None -> max_int
  in
  let elems = Stdlib.min (dependent_product * a.span) range in
  let elems = Stdlib.min elems a.buf.Buffer.size in
  Float.of_int elems *. Float.of_int (Unit_dtype.Dtype.bytes a.buf.Buffer.dtype)

let footprint_of_accesses accesses =
  (* deduplicate structurally identical accesses (e.g. the RMW pair) *)
  let deduped =
    List.fold_left
      (fun acc a ->
        if
          List.exists
            (fun b ->
              Buffer.equal a.buf b.buf
              && Texpr.equal_structural a.index b.index
              && a.span = b.span)
            acc
        then acc
        else a :: acc)
      [] accesses
  in
  List.fold_left (fun total a -> total +. access_footprint a) 0.0 deduped

(* Traffic past a cache of [capacity] bytes: once the nest footprint fits,
   the data is loaded once; otherwise each iteration re-streams. *)
let rec traffic capacity stmt =
  match stmt with
  | Stmt.Nop -> 0.0
  | Stmt.Seq stmts -> List.fold_left (fun acc s -> acc +. traffic capacity s) 0.0 stmts
  | Stmt.Let (_, _, body) | Stmt.Alloc (_, body) -> traffic capacity body
  | Stmt.If { then_; else_; _ } ->
    traffic capacity then_
    +. (match else_ with Some e -> traffic capacity e | None -> 0.0)
  | Stmt.Store _ | Stmt.Intrin_call _ -> footprint_of_accesses (collect_accesses stmt)
  | Stmt.For { extent; body; _ } ->
    let fp = footprint_of_accesses (collect_accesses stmt) in
    if fp <= 0.8 *. Float.of_int capacity then fp
    else Float.of_int extent *. traffic capacity body

(* ---------- parallel structure ---------- *)

let rec parallel_grains stmt =
  match stmt with
  | Stmt.For { extent; kind = Stmt.Parallel; body; _ } -> extent * parallel_grains body
  | Stmt.For { body; _ } | Stmt.Let (_, _, body) | Stmt.Alloc (_, body) ->
    parallel_grains body
  | Stmt.Seq stmts ->
    List.fold_left (fun acc s -> Stdlib.max acc (parallel_grains s)) 1 stmts
  | Stmt.If { then_; _ } -> parallel_grains then_
  | Stmt.Nop | Stmt.Store _ | Stmt.Intrin_call _ -> 1

(* ---------- combination ---------- *)

let per_chunk_overhead = 30.0

let estimate_stmt_with_report spec ?threads stmt =
  let threads = match threads with Some t -> t | None -> spec.Spec.cores in
  let comp = analyze spec stmt in
  (* apply any still-pending dependency bound (no enclosing loop did) *)
  let compute, stall_total =
    if comp.accum_ops > 0.0 then begin
      let dep_bound = comp.lat *. comp.accum_ops /. Float.max 1.0 comp.chains in
      ( Float.max comp.issue dep_bound,
        comp.stall +. Float.max 0.0 (dep_bound -. comp.issue) )
    end
    else (comp.issue, comp.stall)
  in
  let grains = parallel_grains stmt in
  let chunks = (grains + threads - 1) / threads in
  let threads_used = Float.of_int grains /. Float.of_int chunks in
  let threads_used = Float.max 1.0 threads_used in
  let l2_traffic = traffic spec.Spec.l1_bytes stmt in
  let dram_traffic = traffic spec.Spec.llc_bytes stmt in
  let fork_join_cycles =
    (if grains > 1 then spec.Spec.fork_join_cost else 0.0)
    +. (per_chunk_overhead *. Float.of_int grains /. threads_used)
  in
  let compute_cycles = (compute /. threads_used) +. fork_join_cycles in
  let l2_cycles = l2_traffic /. (spec.Spec.l2_bw *. threads_used) in
  let dram_cycles = dram_traffic /. spec.Spec.dram_bw in
  let cycles = Float.max compute_cycles (Float.max l2_cycles dram_cycles) in
  let est =
    { est_cycles = cycles;
      est_seconds = Spec.cycles_to_seconds ~freq_ghz:spec.Spec.freq_ghz cycles;
      est_compute_cycles = compute;
      est_l2_cycles = l2_cycles;
      est_dram_cycles = dram_cycles;
      est_parallel_grains = grains;
      est_threads_used = threads_used
    }
  in
  (* Attribution: split the compute stream into pure issue, stalls and
     I-cache penalty (all scaled by thread utilization, like [compute]),
     charge fork/join + chunk scheduling separately, and account the
     bandwidth excess over compute as memory-bound time.  The components
     then sum exactly to [cycles]. *)
  let stall_c = stall_total /. threads_used in
  let icache_c = comp.icache /. threads_used in
  let pure_c = (compute /. threads_used) -. stall_c -. icache_c in
  let memory_c = Float.max 0.0 (Float.max l2_cycles dram_cycles -. compute_cycles) in
  let intensity = comp.macs /. Float.max 1.0 dram_traffic in
  let report =
    Cost_report.make ~compute:pure_c ~stall:stall_c ~icache:icache_c
      ~fork_join:fork_join_cycles ~memory:memory_c ~intensity
      ~ridge:(Spec.cpu_ridge spec)
  in
  (est, report)

let estimate_stmt spec ?threads stmt = fst (estimate_stmt_with_report spec ?threads stmt)

let estimate_with_report spec ?threads (func : Lower.func) =
  estimate_stmt_with_report spec ?threads func.Lower.fn_body

let estimate spec ?threads (func : Lower.func) =
  fst (estimate_with_report spec ?threads func)
