type cpu = {
  cpu_name : string;
  cores : int;
  freq_ghz : float;
  issue_width : float;
  load_ports : float;
  loop_overhead : float;
  branch_cost : float;
  fork_join_cost : float;
  l1_bytes : int;
  l2_bytes : int;
  llc_bytes : int;
  l2_bw : float;
  dram_bw : float;
  icache_bytes : int;
  icache_penalty : float;
  mul_add_cost : float;
  cast_cost : float;
}

type gpu = {
  gpu_name : string;
  sms : int;
  freq_ghz : float;
  tensor_tput_per_sm : float;
  fma_tput_per_sm : float;
  f16_cast_penalty : float;
  registers_per_sm : int;
  smem_bytes_per_sm : int;
  dram_bw_bytes_per_cycle : float;
  kernel_launch_us : float;
  sync_cost_cycles : float;
  max_blocks_per_sm : int;
}

let cascadelake =
  { cpu_name = "cascadelake";
    cores = 24;
    freq_ghz = 3.0;
    issue_width = 4.0;
    load_ports = 2.0;
    loop_overhead = 2.0;
    branch_cost = 1.0;
    fork_join_cost = 2000.0;
    l1_bytes = 32 * 1024;
    l2_bytes = 1024 * 1024;
    llc_bytes = 36 * 1024 * 1024;
    l2_bw = 32.0;
    dram_bw = 60.0;
    (* ~180 GB/s at 3 GHz *)
    icache_bytes = 4 * 1024;
    icache_penalty = 1.6;
    mul_add_cost = 0.5;
    cast_cost = 0.5
  }

let graviton2 =
  { cpu_name = "graviton2";
    cores = 32;
    freq_ghz = 2.3;
    issue_width = 3.0;
    load_ports = 2.0;
    loop_overhead = 2.0;
    branch_cost = 1.0;
    fork_join_cost = 2000.0;
    l1_bytes = 64 * 1024;
    l2_bytes = 1024 * 1024;
    llc_bytes = 32 * 1024 * 1024;
    l2_bw = 24.0;
    dram_bw = 80.0;
    (* ~190 GB/s at 2.3 GHz *)
    icache_bytes = 4 * 1024;
    icache_penalty = 1.6;
    mul_add_cost = 0.5;
    cast_cost = 0.5
  }

let v100 =
  { gpu_name = "v100";
    sms = 80;
    freq_ghz = 1.38;
    (* 8 tensor cores per SM, 64 MACs each per cycle *)
    tensor_tput_per_sm = 512.0;
    fma_tput_per_sm = 64.0;
    f16_cast_penalty = 2.5;
    registers_per_sm = 65536;
    smem_bytes_per_sm = 96 * 1024;
    dram_bw_bytes_per_cycle = 650.0;
    (* ~900 GB/s at 1.38 GHz *)
    kernel_launch_us = 1.0;
    sync_cost_cycles = 300.0;
    max_blocks_per_sm = 8
  }

let cycles_to_seconds ~freq_ghz cycles = cycles /. (freq_ghz *. 1e9)

(* Roofline ridge points, in MACs per DRAM byte: the operational
   intensity at which peak compute and peak bandwidth balance.  Peak
   CPU MAC throughput is cores / mul_add_cost MACs per cycle; the GPU
   peak is the aggregate tensor-core rate. *)

let cpu_ridge c = Float.of_int c.cores /. c.mul_add_cost /. c.dram_bw

let gpu_ridge g =
  Float.of_int g.sms *. g.tensor_tput_per_sm /. g.dram_bw_bytes_per_cycle
