(** Analytical CPU performance model.

    This is the stand-in for running on real Cascade Lake / Graviton2
    hardware.  It walks a lowered tensor-IR program and charges:

    - {b issue cost} per operation (superscalar width, load ports,
      per-intrinsic throughput, loop/branch overhead);
    - {b dependency stalls}: a loop whose body accumulates into
      loop-invariant addresses is latency-bound at
      [latency * accum_ops / independent_chains] per iteration — the RAW
      hazard of Section III-C that unrolling data-parallel loops below the
      reduction hides;
    - {b instruction-cache pressure}: an unrolled body that overflows the
      uop budget pays an issue multiplier (why the tuner cannot unroll
      arbitrarily far);
    - {b memory}: a footprint-based cache model — traffic at a level is the
      nest footprint once it fits, else the loop re-streams its body — fed
      into L2 and shared-DRAM bandwidths;
    - {b parallelism}: work divides over the effective parallel grains of
      [Parallel] loops, with fork/join and per-chunk overhead (why the
      tuner neither over- nor under-fuses).

    Guarded ("likely") bodies are charged in full, so non-dividing shapes
    pay for their padding — the workload #1/#4 effect of Section VI-B. *)

type estimate = {
  est_cycles : float;  (** end-to-end cycles (the model's latency) *)
  est_seconds : float;
  est_compute_cycles : float;  (** serialized compute including stalls *)
  est_l2_cycles : float;  (** L1-miss traffic over per-core L2 bandwidth *)
  est_dram_cycles : float;  (** LLC-miss traffic over shared DRAM bandwidth *)
  est_parallel_grains : int;  (** iterations available to parallelize *)
  est_threads_used : float;  (** effective thread utilization *)
}

val estimate : Spec.cpu -> ?threads:int -> Unit_tir.Lower.func -> estimate
(** [threads] defaults to [spec.cores]. *)

val estimate_stmt : Spec.cpu -> ?threads:int -> Unit_tir.Stmt.t -> estimate
(** Same model on a bare statement (used by unit tests and the GPU model's
    per-block bodies). *)

val estimate_with_report :
  Spec.cpu -> ?threads:int -> Unit_tir.Lower.func -> estimate * Cost_report.t
(** [estimate] plus the cycle attribution: the report's components sum
    to [est_cycles], with pure issue, RAW stalls and I-cache penalty
    separated out of the compute stream, fork/join + chunk-scheduling
    overhead charged on its own, and bandwidth time in excess of compute
    classed as memory-bound. *)

val estimate_stmt_with_report :
  Spec.cpu -> ?threads:int -> Unit_tir.Stmt.t -> estimate * Cost_report.t
