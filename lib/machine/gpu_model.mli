(** Analytical GPU performance model (the V100 stand-in).

    GPU kernels for conv/matmul on Tensor Cores are generated from one
    implicit-GEMM template (Section III-C's GPU strategy), so the model
    scores {e kernel plans} rather than walking tensor IR:

    - the op is viewed as an [M x N x K] GEMM of 16x16x16 WMMA tiles;
    - a block accumulates a [p x p] tile window (Fig. 6): larger [p]
      reuses each loaded sub-matrix [p] times and creates [p^2] independent
      accumulation chains, but [p > 2] overflows the register file;
    - [fuse_dim] fuses output H and W before tiling, saving the padding
      waste of small feature maps at the price of a data-rearrangement
      pass;
    - [split_k] parallelizes the reduction across [split_k] blocks and
      pays a synchronization plus a final cross-block reduction — the big
      lever when the spatial grid alone cannot fill 80 SMs.

    The cost combines tensor-core issue, accumulation-latency stalls,
    global-memory traffic, occupancy waves, and those overheads. *)

type gemm = {
  g_m : int;  (** data-parallel rows (e.g. OH*OW) *)
  g_n : int;  (** data-parallel columns (e.g. output channels) *)
  g_k : int;  (** reduction length (e.g. R*S*C) *)
  g_oh : int;  (** output height before fusion (= [g_m] rows of [g_ow]) *)
  g_ow : int;
  g_in_bytes : int;  (** activation working set, for rearrangement cost *)
  g_stride : int;  (** conv stride; strided gathers lose locality *)
}

val gemm_of_conv : Unit_dsl.Op_library.conv2d_spec -> gemm
(** Implicit-GEMM view of a (padded) convolution at batch size 1. *)

val gemm_of_matmul : m:int -> n:int -> k:int -> gemm

type config = {
  p : int;  (** outer-product window; Fig. 6's p *)
  fuse_dim : bool;
  split_k : int;  (** 1 = disabled *)
}

val generic_config : config
(** The "Generic" bar of Fig. 11: p = 2, no fusion, no split-K. *)

val candidate_configs : gemm -> config list

type estimate = {
  g_cycles : float;
  g_seconds : float;
  g_compute_cycles : float;
  g_memory_cycles : float;
  g_blocks : int;
  g_waves : float;  (** occupancy waves over the SMs *)
}

val estimate : Spec.gpu -> gemm -> config -> estimate

val estimate_with_report : Spec.gpu -> gemm -> config -> estimate * Cost_report.t
(** [estimate] plus cycle attribution: ideal tensor-core throughput time
    is compute, the wave/latency excess over it is stall, bandwidth time
    beyond compute is memory, and fusion-rearrangement + kernel-launch
    overheads land in fork/join.  Components sum to [g_cycles]. *)

val tune : Spec.gpu -> ?configs:config list -> gemm -> config * estimate

val library_estimate : Spec.gpu -> gemm -> estimate
(** The cuDNN stand-in: near-full tensor-core occupancy and dedicated
    strided kernels (engineering UNIT cannot match), but the padding waste
    of unfused small feature maps and no per-shape (p, split-K) search
    (flexibility cuDNN cannot match).  Dispatch overhead is charged by the
    caller. *)

val cuda_core_seconds : Spec.gpu -> macs:int -> dtype:Unit_dtype.Dtype.t -> float
(** Time on plain CUDA cores {e without} Tensor Cores; fp16 pays
    [f16_cast_penalty] — the Fig. 1 experiment. *)
