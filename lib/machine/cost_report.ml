(* Structured cycle attribution: where a modelled kernel's cycles go.
   The components are an exact partition of the total (see the .mli
   invariant); [make] computes the total as the sum so the invariant
   holds by construction. *)

module Json = Unit_obs.Json

type bound =
  | Compute_bound
  | Memory_bound

let bound_to_string = function
  | Compute_bound -> "compute"
  | Memory_bound -> "memory"

let bound_of_string = function
  | "compute" -> Some Compute_bound
  | "memory" -> Some Memory_bound
  | _ -> None

type t = {
  cr_total : float;
  cr_compute : float;
  cr_stall : float;
  cr_icache : float;
  cr_fork_join : float;
  cr_memory : float;
  cr_intensity : float;
  cr_ridge : float;
  cr_bound : bound;
}

let make ~compute ~stall ~icache ~fork_join ~memory ~intensity ~ridge =
  let clamp x = Float.max 0.0 x in
  let compute = clamp compute
  and stall = clamp stall
  and icache = clamp icache
  and fork_join = clamp fork_join
  and memory = clamp memory in
  { cr_total = compute +. stall +. icache +. fork_join +. memory;
    cr_compute = compute;
    cr_stall = stall;
    cr_icache = icache;
    cr_fork_join = fork_join;
    cr_memory = memory;
    cr_intensity = intensity;
    cr_ridge = ridge;
    cr_bound = (if intensity >= ridge then Compute_bound else Memory_bound)
  }

let components r =
  [ ("compute", r.cr_compute);
    ("stall", r.cr_stall);
    ("icache", r.cr_icache);
    ("fork_join", r.cr_fork_join);
    ("memory", r.cr_memory)
  ]

(* ---------- sinks ---------- *)

let to_json r =
  Json.Obj
    [ ("total", Json.Num r.cr_total);
      ("compute", Json.Num r.cr_compute);
      ("stall", Json.Num r.cr_stall);
      ("icache", Json.Num r.cr_icache);
      ("fork_join", Json.Num r.cr_fork_join);
      ("memory", Json.Num r.cr_memory);
      ("intensity", Json.Num r.cr_intensity);
      ("ridge", Json.Num r.cr_ridge);
      ("bound", Json.Str (bound_to_string r.cr_bound))
    ]

let of_json j =
  let num name =
    match Option.bind (Json.member name j) Json.to_num with
    | Some x when x >= 0.0 || name = "intensity" -> Ok x
    | Some _ -> Error (Printf.sprintf "report field %s is negative" name)
    | None -> Error (Printf.sprintf "report field %s missing or not a number" name)
  in
  let ( let* ) r f = Result.bind r f in
  let* total = num "total" in
  let* compute = num "compute" in
  let* stall = num "stall" in
  let* icache = num "icache" in
  let* fork_join = num "fork_join" in
  let* memory = num "memory" in
  let* intensity = num "intensity" in
  let* ridge = num "ridge" in
  let* bound =
    match Option.bind (Json.member "bound" j) Json.to_str with
    | Some s ->
      (match bound_of_string s with
       | Some b -> Ok b
       | None -> Error (Printf.sprintf "report field bound: unknown value %s" s))
    | None -> Error "report field bound missing or not a string"
  in
  let sum = compute +. stall +. icache +. fork_join +. memory in
  if Float.abs (sum -. total) > 1e-6 *. Float.max 1.0 total then
    Error "report components do not sum to the total"
  else
    Ok
      { cr_total = total; cr_compute = compute; cr_stall = stall;
        cr_icache = icache; cr_fork_join = fork_join; cr_memory = memory;
        cr_intensity = intensity; cr_ridge = ridge; cr_bound = bound
      }

let pct r x = if r.cr_total <= 0.0 then 0.0 else 100.0 *. x /. r.cr_total

let pp ppf r =
  Format.fprintf ppf
    "@[<v>total %.0f cycles:@,\
    \  compute   %12.0f  (%5.1f%%)@,\
    \  stall     %12.0f  (%5.1f%%)@,\
    \  icache    %12.0f  (%5.1f%%)@,\
    \  fork/join %12.0f  (%5.1f%%)@,\
    \  memory    %12.0f  (%5.1f%%)@,\
    roofline: %.2f MACs/byte vs ridge %.2f -> %s-bound@]"
    r.cr_total r.cr_compute (pct r r.cr_compute) r.cr_stall (pct r r.cr_stall)
    r.cr_icache (pct r r.cr_icache) r.cr_fork_join (pct r r.cr_fork_join)
    r.cr_memory (pct r r.cr_memory) r.cr_intensity r.cr_ridge
    (bound_to_string r.cr_bound)
