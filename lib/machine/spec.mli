(** Machine descriptions for the performance models.

    These stand in for the paper's physical testbeds (Section V-A): an
    AWS c5.12xlarge (Cascade Lake, AVX512-VNNI), an m6g.8xlarge
    (Graviton2, NEON+DOT) and a p3.2xlarge (V100, Tensor Cores).  The
    constants are first-order figures from vendor documentation; the models
    built on them are meant to reproduce the {e shape} of the paper's
    results (who wins, which optimization matters), not absolute
    latencies. *)

type cpu = {
  cpu_name : string;
  cores : int;
  freq_ghz : float;
  issue_width : float;  (** scalar micro-ops issued per cycle *)
  load_ports : float;  (** loads sustained per cycle *)
  loop_overhead : float;  (** cycles of control per loop iteration *)
  branch_cost : float;  (** cycles to evaluate a (likely) guard *)
  fork_join_cost : float;  (** cycles to dispatch one parallel chunk *)
  l1_bytes : int;
  l2_bytes : int;
  llc_bytes : int;  (** shared last-level cache *)
  l2_bw : float;  (** bytes/cycle per core, L1 misses served by L2 *)
  dram_bw : float;  (** bytes/cycle, whole socket *)
  icache_bytes : int;  (** effective uop/instruction cache budget *)
  icache_penalty : float;
      (** issue multiplier once an unrolled body overflows it *)
  mul_add_cost : float;
      (** cycles per scalar multiply-accumulate (amortized, superscalar) *)
  cast_cost : float;  (** cycles per scalar conversion *)
}

type gpu = {
  gpu_name : string;
  sms : int;
  freq_ghz : float;
  tensor_tput_per_sm : float;
      (** tensor-core MACs per cycle per SM (mixed precision) *)
  fma_tput_per_sm : float;  (** CUDA-core fp32 FMAs per cycle per SM *)
  f16_cast_penalty : float;
      (** multiplier on CUDA-core work when fp16 needs per-op conversion
          (the Fig. 1 effect) *)
  registers_per_sm : int;  (** 32-bit registers *)
  smem_bytes_per_sm : int;
  dram_bw_bytes_per_cycle : float;  (** whole device, at core clock *)
  kernel_launch_us : float;
  sync_cost_cycles : float;  (** one block-wide barrier *)
  max_blocks_per_sm : int;
}

val cascadelake : cpu
(** 24-core Intel Xeon Platinum 8275CL @ 3.0 GHz (c5.12xlarge). *)

val graviton2 : cpu
(** 32-core AWS Graviton2 @ 2.3 GHz (m6g.8xlarge). *)

val v100 : gpu
(** Nvidia Tesla V100-SXM2 16GB (p3.2xlarge). *)

val cycles_to_seconds : freq_ghz:float -> float -> float

val cpu_ridge : cpu -> float
(** Roofline ridge point in MACs per DRAM byte: peak MAC throughput
    ([cores /. mul_add_cost] MACs/cycle) divided by DRAM bandwidth. *)

val gpu_ridge : gpu -> float
(** Ridge point for the tensor-core roofline, MACs per DRAM byte. *)
