type gemm = {
  g_m : int;
  g_n : int;
  g_k : int;
  g_oh : int;
  g_ow : int;
  g_in_bytes : int;
  g_stride : int;
}

let gemm_of_conv (spec : Unit_dsl.Op_library.conv2d_spec) =
  let oh = Unit_dsl.Op_library.out_height spec in
  let ow = Unit_dsl.Op_library.out_width spec in
  { g_m = oh * ow;
    g_n = spec.Unit_dsl.Op_library.out_channels;
    g_k = spec.Unit_dsl.Op_library.kernel * spec.Unit_dsl.Op_library.kernel
          * spec.Unit_dsl.Op_library.in_channels;
    g_oh = oh;
    g_ow = ow;
    g_in_bytes =
      spec.Unit_dsl.Op_library.in_height * spec.Unit_dsl.Op_library.in_width
      * spec.Unit_dsl.Op_library.in_channels * 2;
    g_stride = spec.Unit_dsl.Op_library.stride
  }

let gemm_of_matmul ~m ~n ~k =
  { g_m = m; g_n = n; g_k = k; g_oh = 1; g_ow = m; g_in_bytes = m * k * 2; g_stride = 1 }

type config = {
  p : int;
  fuse_dim : bool;
  split_k : int;
}

let generic_config = { p = 2; fuse_dim = false; split_k = 1 }

let candidate_configs gemm =
  let ps = [ 1; 2; 4 ] in
  let fuses = if gemm.g_oh > 1 then [ false; true ] else [ false ] in
  let splits = [ 1; 2; 4; 8; 16 ] in
  List.concat_map
    (fun p ->
      List.concat_map
        (fun fuse_dim -> List.map (fun split_k -> { p; fuse_dim; split_k }) splits)
        fuses)
    ps

type estimate = {
  g_cycles : float;
  g_seconds : float;
  g_compute_cycles : float;
  g_memory_cycles : float;
  g_blocks : int;
  g_waves : float;
}

(* Model constants: WMMA tile edge; cycles one warp needs to issue one
   WMMA through its tensor-core pipe (the SM's 8 pipes need ~8 resident
   warps to saturate); the accumulate latency a dependent chain exposes;
   per-warp shared-memory staging reuse; and the register-spill penalty
   once the p x p accumulator window exceeds the file. *)
let tile = 16
let wmma_latency = 32.0
let warps_to_saturate = 8.0
let spill_penalty = 2.5
let max_p_without_spill = 2
let smem_reduce_bw = 128.0 (* bytes/cycle for the split-K epilogue *)

let ceil_div a b = (a + b - 1) / b

let tiles gemm config =
  let tm =
    if config.fuse_dim || gemm.g_oh = 1 then ceil_div gemm.g_m tile
    else gemm.g_oh * ceil_div gemm.g_ow tile
  in
  (tm, ceil_div gemm.g_n tile, ceil_div gemm.g_k tile)

let launch_cycles (spec : Spec.gpu) =
  spec.Spec.kernel_launch_us *. 1e-6 *. spec.Spec.freq_ghz *. 1e9

let finish (spec : Spec.gpu) ~compute ~memory ~overheads ~blocks ~waves =
  let cycles = Float.max compute memory +. overheads +. launch_cycles spec in
  { g_cycles = cycles;
    g_seconds = Spec.cycles_to_seconds ~freq_ghz:spec.Spec.freq_ghz cycles;
    g_compute_cycles = compute;
    g_memory_cycles = memory;
    g_blocks = blocks;
    g_waves = waves
  }

(* UNIT's generated kernel: one block owns a p x p window of WMMA tiles
   (Fig. 6); split_k warps per block each reduce a K segment and combine in
   shared memory.  Tensor-core throughput needs ~8 resident warps per SM,
   so occupancy — blocks per SM x warps per block — is the first-order
   term, which is exactly what SplitK buys on small grids. *)
let estimate_with_report (spec : Spec.gpu) gemm config =
  let tm, tn, tk = tiles gemm config in
  let blocks = ceil_div tm config.p * ceil_div tn config.p in
  let p = Float.of_int config.p in
  (* one warp drives one of the SM's pipes *)
  let per_pipe_tput = spec.Spec.tensor_tput_per_sm /. warps_to_saturate in
  let warp_issue = 4096.0 /. per_pipe_tput in
  let per_step = p *. p *. Float.max warp_issue wmma_latency in
  let per_step =
    if config.p > max_p_without_spill then per_step *. spill_penalty else per_step
  in
  (* strided activation gathers are not coalesced: every row of the
     staging load splits into [stride] transactions and the transposed
     access loses the line neighbours — the #1/#15 locality loss *)
  let per_step = per_step *. Float.of_int (gemm.g_stride * gemm.g_stride) in
  let warp_time = Float.of_int (ceil_div tk config.split_k) *. per_step in
  let splitk_overhead =
    if config.split_k > 1 then
      spec.Spec.sync_cost_cycles
      +. (Float.of_int (config.split_k * config.p * config.p * tile * tile * 4)
          /. smem_reduce_bw)
    else 0.0
  in
  let active_sms = Stdlib.min blocks spec.Spec.sms in
  let resident =
    Stdlib.max 1 (Stdlib.min spec.Spec.max_blocks_per_sm (ceil_div blocks spec.Spec.sms))
  in
  let utilization =
    Float.min 1.0 (Float.of_int (resident * config.split_k) /. warps_to_saturate)
  in
  let total_macs = Float.of_int tm *. Float.of_int tn *. Float.of_int tk *. 4096.0 in
  let throughput_time =
    total_macs
    /. (Float.of_int active_sms *. spec.Spec.tensor_tput_per_sm *. utilization)
    (* the gather inefficiency also caps sustained throughput *)
    *. Float.of_int gemm.g_stride
  in
  (* grids beyond full residency serialize into waves of blocks *)
  let waves = ceil_div blocks (spec.Spec.sms * resident) in
  let compute =
    Float.max throughput_time
      (Float.of_int waves *. (warp_time +. splitk_overhead))
  in
  (* global traffic: each block streams its K panels once, staged through
     shared memory; strided activation gathers waste whole lines *)
  let elem_bytes = 2.0 in
  let tile_bytes = Float.of_int (tile * tile) *. elem_bytes in
  let a_bytes = p *. tile_bytes *. Float.of_int (gemm.g_stride * gemm.g_stride) in
  let b_bytes = p *. tile_bytes in
  let stream_bytes = Float.of_int (blocks * tk) *. (a_bytes +. b_bytes) in
  (* L2 catches cross-block panel reuse: each operand element crosses DRAM
     about twice even when many blocks share it *)
  let working_set =
    2.0 *. Float.of_int ((gemm.g_m * gemm.g_k) + (gemm.g_k * gemm.g_n))
    *. Float.of_int (gemm.g_stride * gemm.g_stride)
  in
  let total_bytes = Float.min stream_bytes (2.0 *. working_set) in
  let memory = total_bytes /. spec.Spec.dram_bw_bytes_per_cycle in
  let fuse_overhead =
    if config.fuse_dim && gemm.g_oh > 1 then
      Float.of_int gemm.g_in_bytes *. 2.0 /. spec.Spec.dram_bw_bytes_per_cycle
    else 0.0
  in
  let est =
    finish spec ~compute ~memory ~overheads:(fuse_overhead) ~blocks
      ~waves:(Float.of_int (ceil_div blocks spec.Spec.sms))
  in
  (* Attribution: ideal tensor-core throughput is pure compute; whatever
     the wave/latency path adds on top of it is occupancy stall; memory
     time beyond compute is bandwidth-bound; fusion rearrangement, split-K
     epilogues already inside [compute], launch goes to fork/join. *)
  let stall_c = Float.max 0.0 (compute -. throughput_time) in
  let pure_c = compute -. stall_c in
  let memory_c = Float.max 0.0 (memory -. compute) in
  let report =
    Cost_report.make ~compute:pure_c ~stall:stall_c ~icache:0.0
      ~fork_join:(fuse_overhead +. launch_cycles spec)
      ~memory:memory_c
      ~intensity:(total_macs /. Float.max 1.0 total_bytes)
      ~ridge:(Spec.gpu_ridge spec)
  in
  (est, report)

let estimate spec gemm config = fst (estimate_with_report spec gemm config)

(* A vendor-library kernel (the cuDNN stand-in).  Engineered kernels are
   pipelined and multi-warp: they run throughput-bound at full per-SM
   utilization on whatever blocks the grid offers, and ship dedicated
   strided kernels (callers pass the true stride; it is waived here).
   What they cannot do is fuse dimensions (padding waste stays), split the
   reduction, or pick tiles per shape at batch 1 — a constant
   inefficiency. *)
let library_batch1_inefficiency = 1.8

let library_estimate (spec : Spec.gpu) gemm =
  let gemm = { gemm with g_stride = 1 } in
  let config = { p = 2; fuse_dim = false; split_k = 1 } in
  let tm, tn, tk = tiles gemm config in
  let blocks = ceil_div tm config.p * ceil_div tn config.p in
  let active_sms = Stdlib.min (Stdlib.max 1 blocks) spec.Spec.sms in
  let total_macs = Float.of_int tm *. Float.of_int tn *. Float.of_int tk *. 4096.0 in
  let compute =
    total_macs /. (Float.of_int active_sms *. spec.Spec.tensor_tput_per_sm)
  in
  let tile_bytes = Float.of_int (tile * tile) *. 2.0 in
  let stream_bytes = Float.of_int (blocks * tk) *. (4.0 *. tile_bytes) in
  let working_set = 2.0 *. Float.of_int ((gemm.g_m * gemm.g_k) + (gemm.g_k * gemm.g_n)) in
  let total_bytes = Float.min stream_bytes (2.0 *. working_set) in
  let memory = total_bytes /. spec.Spec.dram_bw_bytes_per_cycle in
  let cycles =
    (Float.max compute memory *. library_batch1_inefficiency) +. launch_cycles spec
  in
  { g_cycles = cycles;
    g_seconds = Spec.cycles_to_seconds ~freq_ghz:spec.Spec.freq_ghz cycles;
    g_compute_cycles = compute;
    g_memory_cycles = memory;
    g_blocks = blocks;
    g_waves = Float.of_int (ceil_div blocks spec.Spec.sms)
  }

let tune spec ?configs gemm =
  let configs = match configs with Some c -> c | None -> candidate_configs gemm in
  match configs with
  | [] -> invalid_arg "Gpu_model.tune: empty configuration list"
  | first :: rest ->
    List.fold_left
      (fun ((_, best_est) as best) config ->
        let est = estimate spec gemm config in
        if est.g_cycles < best_est.g_cycles then (config, est) else best)
      (first, estimate spec gemm first)
      rest

let cuda_core_seconds (spec : Spec.gpu) ~macs ~dtype =
  let penalty =
    match dtype with
    | Unit_dtype.Dtype.F16 -> spec.Spec.f16_cast_penalty
    | _ -> 1.0
  in
  let cycles =
    (Float.of_int macs /. (spec.Spec.fma_tput_per_sm *. Float.of_int spec.Spec.sms))
    *. penalty
    +. (spec.Spec.kernel_launch_us *. 1e-6 *. spec.Spec.freq_ghz *. 1e9)
  in
  Spec.cycles_to_seconds ~freq_ghz:spec.Spec.freq_ghz cycles
