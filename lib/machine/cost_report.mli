(** Structured cycle attribution for modelled kernels.

    A [t] partitions the model's total estimated cycles into five
    components — pure compute issue, RAW-hazard stalls, I-cache /
    unroll penalties, fork-join + chunk-scheduling overhead, and the
    memory-bandwidth excess over compute — and carries the roofline
    classification (operational intensity vs. the machine's ridge
    point).

    Invariant: [cr_total = cr_compute +. cr_stall +. cr_icache +.
    cr_fork_join +. cr_memory] (exactly, by construction in [make]). *)

type bound =
  | Compute_bound  (** intensity >= ridge: limited by ALU/tensor throughput *)
  | Memory_bound   (** intensity < ridge: limited by DRAM bandwidth *)

val bound_to_string : bound -> string
val bound_of_string : string -> bound option

type t = private {
  cr_total : float;      (** total modelled cycles (sum of components) *)
  cr_compute : float;    (** pure issue/compute cycles *)
  cr_stall : float;      (** RAW-hazard dependence stalls *)
  cr_icache : float;     (** I-cache pressure / unroll penalty *)
  cr_fork_join : float;  (** thread fork/join + per-chunk scheduling *)
  cr_memory : float;     (** bandwidth-bound cycles beyond compute *)
  cr_intensity : float;  (** operational intensity, MACs per DRAM byte *)
  cr_ridge : float;      (** machine ridge point, MACs per byte *)
  cr_bound : bound;
}

val make :
  compute:float ->
  stall:float ->
  icache:float ->
  fork_join:float ->
  memory:float ->
  intensity:float ->
  ridge:float ->
  t
(** Components are clamped at 0; the total is their sum; the bound is
    derived from [intensity >= ridge]. *)

val components : t -> (string * float) list
(** The five (name, cycles) components, in canonical order. *)

val to_json : t -> Unit_obs.Json.t
val of_json : Unit_obs.Json.t -> (t, string) result
(** [of_json] validates presence, non-negativity, and the sum
    invariant (relative tolerance 1e-6). *)

val pp : Format.formatter -> t -> unit
